//! Digital compute-in-memory macro model (memory-centric coprocessor).
//!
//! A CIM macro fuses the data memory and the compute array: weights live in
//! 6T SRAM subarrays and never move to a register file. During GEMV the
//! activation vector is broadcast bit-serially into all columns; every cycle
//! each subarray reads one stored weight, multiplies it with one activation
//! bit, the per-column adder tree reduces the partial products and a
//! shift-and-accumulate unit assembles the full-precision result. A GEMV
//! over `M` sequential weight rows with `W`-bit activations takes
//!
//! ```text
//! L_CIM = M * W + 1                                   (paper Eq. 3)
//! ```
//!
//! cycles. The broadcast dataflow keeps every compute cell busy for GEMV
//! (where the systolic array would idle), but for GEMM the bit-serial factor
//! `W` makes it less efficient than the systolic array — exactly the
//! asymmetry that motivates the heterogeneous design.

use crate::quant::{quantize_int8, QuantizedVector};
use crate::Cycles;
use edgemm_arch::CimGeometry;

/// Result of a GEMV on the CIM model.
#[derive(Debug, Clone, PartialEq)]
pub struct GemvResult {
    /// Output vector of length `n` (one element per weight column).
    pub output: Vec<f32>,
    /// Total coprocessor cycles.
    pub cycles: Cycles,
    /// Number of macro passes (reloads of the weight SRAM) required.
    pub passes: usize,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
}

impl GemvResult {
    /// Achieved effective MACs per cycle.
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles.0 == 0 {
            0.0
        } else {
            self.macs as f64 / self.cycles.0 as f64
        }
    }
}

/// Functional + timing model of one digital CIM macro.
#[derive(Debug, Clone, PartialEq)]
pub struct CimMacro {
    geometry: CimGeometry,
    /// Resident quantized weights, row-major `k x n`, plus their shape.
    weights: Option<(QuantizedVector, usize, usize)>,
}

impl CimMacro {
    /// Create a macro with the given geometry and no resident weights.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has a zero dimension.
    pub fn new(geometry: CimGeometry) -> Self {
        assert!(
            geometry.cols > 0 && geometry.subarrays > 0 && geometry.subarray_rows > 0,
            "CIM geometry must be non-zero"
        );
        CimMacro {
            geometry,
            weights: None,
        }
    }

    /// The macro geometry.
    pub fn geometry(&self) -> &CimGeometry {
        &self.geometry
    }

    /// Number of weights (INT-`weight_bits` values) the macro can hold.
    pub fn capacity(&self) -> usize {
        self.geometry.weight_capacity()
    }

    /// Load a `k x n` weight matrix (row-major) into the macro, quantizing it
    /// to the macro's weight precision. Returns the number of *passes* the
    /// matrix needs if it exceeds the macro capacity (the simulator charges a
    /// DMA refill per pass).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != k * n`.
    pub fn load_weights(&mut self, weights: &[f32], k: usize, n: usize) -> usize {
        assert_eq!(weights.len(), k * n, "weight shape mismatch");
        self.weights = Some((quantize_int8(weights), k, n));
        self.passes_for(k, n)
    }

    /// Whether a weight matrix is resident.
    pub fn has_weights(&self) -> bool {
        self.weights.is_some()
    }

    /// Number of macro passes needed for a `k x n` matrix.
    pub fn passes_for(&self, k: usize, n: usize) -> usize {
        (k * n).div_ceil(self.capacity().max(1)).max(1)
    }

    /// Cycle count of a GEMV against a `k x n` weight matrix (paper Eq. 3),
    /// independent of the functional computation. `M` in the formula is the
    /// number of weight rows each column processes sequentially, i.e. the
    /// reduction length divided by the per-column subarray parallelism; the
    /// result is multiplied by the number of column passes needed to cover
    /// all `n` output channels.
    pub fn gemv_cycles(&self, k: usize, n: usize) -> Cycles {
        if k == 0 || n == 0 {
            return Cycles::ZERO;
        }
        let w = self.geometry.activation_bits as u64;
        let col_passes = n.div_ceil(self.geometry.cols) as u64;
        let m_seq = k.div_ceil(self.geometry.subarrays) as u64;
        Cycles(col_passes * (m_seq * w + 1))
    }

    /// Cycle count of running an `m`-row GEMM on the CIM macro (each row is a
    /// separate bit-serial GEMV — the `W` factor that makes CIM a poor fit
    /// for compute-bound GEMM).
    pub fn gemm_cycles(&self, m: usize, k: usize, n: usize) -> Cycles {
        Cycles(m as u64 * self.gemv_cycles(k, n).0)
    }

    /// Functional GEMV: `output = x (1 x k) * W (k x n)` using the resident
    /// quantized weights.
    ///
    /// # Panics
    ///
    /// Panics if no weights are resident or if `x.len()` does not match the
    /// resident reduction dimension.
    pub fn gemv(&self, x: &[f32]) -> GemvResult {
        let (q, k, n) = self
            .weights
            .as_ref()
            // lint:allow(no-unwrap): documented panic contract (see # Panics)
            .expect("no weights resident in CIM macro");
        assert_eq!(x.len(), *k, "activation length mismatch");
        // Activations are quantized to the broadcast bit-width as well.
        let xq = quantize_int8(x);
        let (k, n) = (*k, *n);
        let mut output = vec![0.0f32; n];
        // Four columns accumulate in separate i32 registers per block;
        // integer addition is exact, so this matches the scalar column loop
        // bit for bit while reading each activation once per block.
        const LANES: usize = 4;
        let mut j = 0;
        while j + LANES <= n {
            let mut acc = [0i32; LANES];
            for i in 0..k {
                let xv = xq.values[i] as i32;
                let wrow = &q.values[i * n + j..i * n + j + LANES];
                acc[0] += xv * wrow[0] as i32;
                acc[1] += xv * wrow[1] as i32;
                acc[2] += xv * wrow[2] as i32;
                acc[3] += xv * wrow[3] as i32;
            }
            for (lane, &a) in acc.iter().enumerate() {
                output[j + lane] = a as f32 * xq.scale * q.scale;
            }
            j += LANES;
        }
        while j < n {
            let mut acc: i32 = 0;
            for i in 0..k {
                acc += xq.values[i] as i32 * q.values[i * n + j] as i32;
            }
            output[j] = acc as f32 * xq.scale * q.scale;
            j += 1;
        }
        GemvResult {
            output,
            cycles: self.gemv_cycles(k, n),
            passes: self.passes_for(k, n),
            macs: (k * n) as u64,
        }
    }

    /// Functional GEMV against a subset of weight rows (used after pruning:
    /// only the non-pruned rows are read from DRAM and computed).
    ///
    /// `row_indices` selects which reduction indices participate; `x_packed`
    /// must contain the activation values for exactly those indices, in the
    /// same order.
    ///
    /// # Panics
    ///
    /// Panics if no weights are resident, if the two slices differ in length,
    /// or if an index is out of range.
    pub fn gemv_pruned(&self, x_packed: &[f32], row_indices: &[usize]) -> GemvResult {
        let (q, k, n) = self
            .weights
            .as_ref()
            // lint:allow(no-unwrap): documented panic contract (see # Panics)
            .expect("no weights resident in CIM macro");
        assert_eq!(
            x_packed.len(),
            row_indices.len(),
            "packed activations and indices must align"
        );
        assert!(
            row_indices.iter().all(|&i| i < *k),
            "row index out of range"
        );
        let xq = quantize_int8(x_packed);
        let n = *n;
        let mut output = vec![0.0f32; n];
        // Same 4-column register blocking as the dense path, walking only
        // the selected rows.
        const LANES: usize = 4;
        let mut j = 0;
        while j + LANES <= n {
            let mut acc = [0i32; LANES];
            for (p, &i) in row_indices.iter().enumerate() {
                let xv = xq.values[p] as i32;
                let wrow = &q.values[i * n + j..i * n + j + LANES];
                acc[0] += xv * wrow[0] as i32;
                acc[1] += xv * wrow[1] as i32;
                acc[2] += xv * wrow[2] as i32;
                acc[3] += xv * wrow[3] as i32;
            }
            for (lane, &a) in acc.iter().enumerate() {
                output[j + lane] = a as f32 * xq.scale * q.scale;
            }
            j += LANES;
        }
        while j < n {
            let mut acc: i32 = 0;
            for (p, &i) in row_indices.iter().enumerate() {
                acc += xq.values[p] as i32 * q.values[i * n + j] as i32;
            }
            output[j] = acc as f32 * xq.scale * q.scale;
            j += 1;
        }
        GemvResult {
            output,
            cycles: self.gemv_cycles(row_indices.len(), n),
            passes: self.passes_for(row_indices.len().max(1), n),
            macs: (row_indices.len() * n) as u64,
        }
    }
}

impl Default for CimMacro {
    fn default() -> Self {
        Self::new(CimGeometry::paper_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systolic::SystolicArray;
    use edgemm_arch::SystolicGeometry;
    use proptest::prelude::*;

    fn reference_gemv(x: &[f32], w: &[f32], k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f64; n];
        for j in 0..n {
            for i in 0..k {
                out[j] += x[i] as f64 * w[i * n + j] as f64;
            }
        }
        out.into_iter().map(|v| v as f32).collect()
    }

    /// The straight (pre-unrolling) column loop over the resident quantized
    /// weights — the bit-exact oracle for the blocked kernel.
    fn scalar_quantized_gemv(cim: &CimMacro, x: &[f32]) -> Vec<f32> {
        let (q, k, n) = cim.weights.as_ref().expect("weights resident");
        let xq = quantize_int8(x);
        let mut output = vec![0.0f32; *n];
        for (j, out) in output.iter_mut().enumerate() {
            let mut acc: i32 = 0;
            for i in 0..*k {
                acc += xq.values[i] as i32 * q.values[i * *n + j] as i32;
            }
            *out = acc as f32 * xq.scale * q.scale;
        }
        output
    }

    #[test]
    fn unrolled_gemv_is_bit_identical_on_awkward_shapes() {
        // Odd columns, sub-lane widths, single column, single row.
        for &(k, n) in &[(5usize, 7usize), (1, 13), (9, 1), (1, 1), (3, 4), (16, 6)] {
            let x: Vec<f32> = (0..k).map(|i| (i as f32 * 0.7).sin()).collect();
            let w: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.3).cos()).collect();
            let mut cim = CimMacro::default();
            cim.load_weights(&w, k, n);
            assert_eq!(
                cim.gemv(&x).output,
                scalar_quantized_gemv(&cim, &x),
                "shape {k}x{n}"
            );
        }
    }

    /// Scalar replica of the pruned column loop (same resident
    /// quantization, only the selected rows participate).
    fn scalar_pruned_gemv(cim: &CimMacro, x_packed: &[f32], rows: &[usize]) -> Vec<f32> {
        let (q, _, n) = cim.weights.as_ref().expect("weights resident");
        let xq = quantize_int8(x_packed);
        let mut output = vec![0.0f32; *n];
        for (j, out) in output.iter_mut().enumerate() {
            let mut acc: i32 = 0;
            for (p, &i) in rows.iter().enumerate() {
                acc += xq.values[p] as i32 * q.values[i * *n + j] as i32;
            }
            *out = acc as f32 * xq.scale * q.scale;
        }
        output
    }

    #[test]
    fn unrolled_pruned_gemv_is_bit_identical() {
        for &(k, n) in &[(12usize, 7usize), (9, 3), (5, 1), (8, 8)] {
            let x: Vec<f32> = (0..k).map(|i| (i as f32 * 0.7).sin()).collect();
            let w: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.3).cos()).collect();
            let mut cim = CimMacro::default();
            cim.load_weights(&w, k, n);
            let rows: Vec<usize> = (0..k).step_by(3).collect();
            let packed: Vec<f32> = rows.iter().map(|&i| x[i]).collect();
            assert_eq!(
                cim.gemv_pruned(&packed, &rows).output,
                scalar_pruned_gemv(&cim, &packed, &rows),
                "shape {k}x{n}"
            );
        }
    }

    #[test]
    fn eq3_matches_paper_formula() {
        let cim = CimMacro::new(CimGeometry {
            cols: 32,
            subarrays: 16,
            subarray_rows: 64,
            weight_bits: 8,
            activation_bits: 8,
        });
        // Single column pass, k = 16 -> M = 1 sequential row, W = 8 -> 9 cycles.
        assert_eq!(cim.gemv_cycles(16, 32), Cycles(9));
        // k = 160 -> M = 10, W = 8 -> 81 cycles.
        assert_eq!(cim.gemv_cycles(160, 32), Cycles(81));
        // n = 64 needs two column passes.
        assert_eq!(cim.gemv_cycles(160, 64), Cycles(162));
    }

    #[test]
    fn gemv_matches_reference_within_quantization_error() {
        let k = 48;
        let n = 20;
        let x: Vec<f32> = (0..k).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.1).collect();
        let w: Vec<f32> = (0..k * n)
            .map(|i| ((i * 11 % 17) as f32 - 8.0) * 0.05)
            .collect();
        let mut cim = CimMacro::default();
        cim.load_weights(&w, k, n);
        let got = cim.gemv(&x);
        let want = reference_gemv(&x, &w, k, n);
        let scale = want.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-6);
        for (g, r) in got.output.iter().zip(&want) {
            assert!((g - r).abs() / scale < 0.05, "got {g}, want {r}");
        }
    }

    #[test]
    fn pruned_gemv_with_all_rows_equals_dense() {
        let k = 32;
        let n = 8;
        let x: Vec<f32> = (0..k).map(|i| (i as f32 * 0.37).sin()).collect();
        let w: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut cim = CimMacro::default();
        cim.load_weights(&w, k, n);
        let dense = cim.gemv(&x);
        let all_rows: Vec<usize> = (0..k).collect();
        let pruned = cim.gemv_pruned(&x, &all_rows);
        for (a, b) in dense.output.iter().zip(&pruned.output) {
            assert!((a - b).abs() < 1e-4);
        }
        assert_eq!(dense.cycles, pruned.cycles);
    }

    #[test]
    fn pruning_reduces_cycles_proportionally() {
        let cim = CimMacro::default();
        let dense = cim.gemv_cycles(1024, 256);
        let half = cim.gemv_cycles(512, 256);
        let ratio = dense.0 as f64 / half.0 as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn cim_beats_systolic_on_gemv_cycles() {
        // The headline motivation: for GEMV the CIM macro needs fewer cycles
        // than the systolic array of a comparable core.
        let cim = CimMacro::default();
        let sa = SystolicArray::new(SystolicGeometry::paper_default());
        let k = 2048;
        let n = 2048;
        assert!(cim.gemv_cycles(k, n) < sa.gemv_cycles(k, n));
    }

    #[test]
    fn systolic_beats_cim_on_gemm_cycles() {
        // ... and the reverse for GEMM, because of the bit-serial factor W.
        let cim = CimMacro::default();
        let sa = SystolicArray::new(SystolicGeometry::paper_default());
        let m = 256;
        let k = 768;
        let n = 768;
        assert!(sa.gemm_cycles(m, k, n) < cim.gemm_cycles(m, k, n));
    }

    #[test]
    fn capacity_and_passes() {
        let cim = CimMacro::default();
        let cap = cim.capacity();
        assert_eq!(cim.passes_for(1, 1), 1);
        assert_eq!(cim.passes_for(cap, 1), 1);
        assert_eq!(cim.passes_for(cap + 1, 1), 2);
    }

    #[test]
    #[should_panic(expected = "no weights resident")]
    fn gemv_without_weights_panics() {
        CimMacro::default().gemv(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "activation length mismatch")]
    fn gemv_wrong_length_panics() {
        let mut cim = CimMacro::default();
        cim.load_weights(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        cim.gemv(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn zero_dims_are_free() {
        let cim = CimMacro::default();
        assert_eq!(cim.gemv_cycles(0, 128), Cycles::ZERO);
        assert_eq!(cim.gemv_cycles(128, 0), Cycles::ZERO);
    }

    proptest! {
        /// The blocked kernel equals the scalar column loop exactly on
        /// random shapes.
        #[test]
        fn unrolled_gemv_bit_identical_random(
            k in 1usize..24,
            n in 1usize..24,
            seed in 0u64..1000,
        ) {
            let f = |i: usize, s: u64| {
                ((i as u64).wrapping_mul(s + 3) % 29) as f32 * 0.0625 - 0.875
            };
            let x: Vec<f32> = (0..k).map(|i| f(i, seed)).collect();
            let w: Vec<f32> = (0..k * n).map(|i| f(i, seed + 17)).collect();
            let mut cim = CimMacro::default();
            cim.load_weights(&w, k, n);
            prop_assert_eq!(cim.gemv(&x).output, scalar_quantized_gemv(&cim, &x));
        }

        /// GEMV cycle counts are monotonic in both dimensions.
        #[test]
        fn gemv_cycles_monotonic(k in 1usize..4096, n in 1usize..4096) {
            let cim = CimMacro::default();
            prop_assert!(cim.gemv_cycles(k + 1, n) >= cim.gemv_cycles(k, n));
            prop_assert!(cim.gemv_cycles(k, n + 1) >= cim.gemv_cycles(k, n));
        }

        /// Pruned GEMV never takes more cycles than the dense one.
        #[test]
        fn pruned_never_slower(k in 2usize..512, keep in 1usize..512, n in 1usize..256) {
            let keep = keep.min(k);
            let cim = CimMacro::default();
            prop_assert!(cim.gemv_cycles(keep, n) <= cim.gemv_cycles(k, n));
        }
    }
}
