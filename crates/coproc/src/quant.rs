//! Numeric precision helpers: BF16 rounding and INT8 quantization.
//!
//! The systolic array computes in BF16 and the CIM macro stores INT8 weights
//! (N = 8 bit-cells per weight) with per-tensor scaling. These helpers give
//! the functional models the same rounding behaviour so accuracy experiments
//! (cosine similarity of pruned vs unpruned FFN outputs) include realistic
//! quantization noise.

/// Round an `f32` to BF16 precision (round-to-nearest-even on the mantissa)
/// and return it widened back to `f32`.
pub fn bf16_round(x: f32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    let bits = x.to_bits();
    // BF16 keeps the upper 16 bits of the IEEE-754 binary32 encoding.
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    let rounded = bits.wrapping_add(rounding_bias) & 0xFFFF_0000;
    f32::from_bits(rounded)
}

/// A vector quantized to INT8 with a single power-agnostic scale.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedVector {
    /// Quantized values in `[-127, 127]`.
    pub values: Vec<i8>,
    /// Dequantization scale: `real = value * scale`.
    pub scale: f32,
}

impl QuantizedVector {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Symmetric per-tensor INT8 quantization.
///
/// The scale maps the largest absolute value to 127; an all-zero input gets
/// a scale of 1.0 so dequantization is well defined.
pub fn quantize_int8(values: &[f32]) -> QuantizedVector {
    let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
    let values = values
        .iter()
        .map(|v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    QuantizedVector { values, scale }
}

/// Dequantize an INT8 vector back to `f32`.
pub fn dequantize_int8(q: &QuantizedVector) -> Vec<f32> {
    q.values.iter().map(|&v| v as f32 * q.scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bf16_round_is_idempotent() {
        for x in [
            0.0f32,
            1.0,
            -1.5,
            core::f32::consts::PI,
            1e-20,
            1e20,
            -123.456,
        ] {
            let once = bf16_round(x);
            assert_eq!(bf16_round(once), once);
        }
    }

    #[test]
    fn bf16_round_preserves_exact_values() {
        assert_eq!(bf16_round(1.0), 1.0);
        assert_eq!(bf16_round(-2.0), -2.0);
        assert_eq!(bf16_round(0.5), 0.5);
        assert_eq!(bf16_round(0.0), 0.0);
    }

    #[test]
    fn bf16_round_error_is_bounded() {
        // BF16 has 8 mantissa bits -> relative error < 2^-8.
        for x in [
            core::f32::consts::PI,
            core::f32::consts::E,
            123.456,
            0.001234,
        ] {
            let r = bf16_round(x);
            assert!(((r - x) / x).abs() < 1.0 / 256.0, "x={x} r={r}");
        }
    }

    #[test]
    fn bf16_handles_non_finite() {
        assert!(bf16_round(f32::NAN).is_nan());
        assert_eq!(bf16_round(f32::INFINITY), f32::INFINITY);
    }

    #[test]
    fn int8_round_trip_error_bounded() {
        let values: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) * 0.37).collect();
        let q = quantize_int8(&values);
        let deq = dequantize_int8(&q);
        let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (a, b) in values.iter().zip(&deq) {
            assert!((a - b).abs() <= max_abs / 127.0 + 1e-6);
        }
    }

    #[test]
    fn int8_zero_vector() {
        let q = quantize_int8(&[0.0, 0.0, 0.0]);
        assert_eq!(q.scale, 1.0);
        assert_eq!(dequantize_int8(&q), vec![0.0, 0.0, 0.0]);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
    }

    #[test]
    fn int8_extremes_map_to_127() {
        let q = quantize_int8(&[-10.0, 10.0, 5.0]);
        assert_eq!(q.values[0], -127);
        assert_eq!(q.values[1], 127);
    }

    proptest! {
        #[test]
        fn quantize_never_overflows(values in proptest::collection::vec(-1.0e6f32..1.0e6, 1..256)) {
            let q = quantize_int8(&values);
            prop_assert!(q.values.iter().all(|&v| (-127..=127).contains(&(v as i32))));
            prop_assert_eq!(q.len(), values.len());
        }

        #[test]
        fn bf16_relative_error_bound(x in -1.0e30f32..1.0e30) {
            prop_assume!(x != 0.0 && x.is_finite());
            let r = bf16_round(x);
            prop_assert!(((r - x) / x).abs() <= 1.0 / 256.0 + f32::EPSILON);
        }
    }
}
