//! Functional and timing models of the EdgeMM coprocessors.
//!
//! Each EdgeMM core attaches one of two coprocessors to its RISC-V host core
//! through a direct-linked interface:
//!
//! * the **systolic array** ([`SystolicArray`]) of compute-centric cores — a
//!   weight-stationary R x C PE array whose GEMM latency follows the paper's
//!   Eq. 2, `L_SA = 2R + C + M - 3`;
//! * the **digital CIM macro** ([`CimMacro`]) of memory-centric cores — an
//!   SRAM macro with per-column adder trees performing bit-serial GEMV in
//!   `L_CIM = M*W + 1` cycles (Eq. 3).
//!
//! Both core kinds additionally carry a [`VectorUnit`] for element-wise
//! operations (activation functions, precision conversion) and the MC cores
//! embed the hardware [`ActAwarePruner`] of Fig. 8, which performs the local
//! Top-k channel selection that backs the activation-aware weight pruning.
//!
//! The models here are *functional* (they compute real numbers so accuracy
//! experiments are meaningful) and *timed* (they report cycle counts used by
//! the `edgemm-sim` performance simulator). They are deliberately not
//! bit-exact RTL models — see DESIGN.md for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cim;
mod pruner;
mod quant;
mod systolic;
mod vector;

pub use cim::{CimMacro, GemvResult};
pub use pruner::{ActAwarePruner, PruneOutcome};
pub use quant::{bf16_round, dequantize_int8, quantize_int8, QuantizedVector};
pub use systolic::{GemmResult, SystolicArray};
pub use vector::{VectorUnit, VectorUnitResult};

/// Cycle count newtype shared by all coprocessor timing models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Saturating addition.
    pub fn saturating_add(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(other.0))
    }

    /// Convert to seconds at the given clock frequency.
    pub fn to_seconds(self, clock_mhz: u32) -> f64 {
        self.0 as f64 / (clock_mhz as f64 * 1.0e6)
    }
}

impl std::ops::Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for Cycles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles(10) + Cycles(5);
        assert_eq!(a, Cycles(15));
        let mut b = Cycles(1);
        b += Cycles(2);
        assert_eq!(b, Cycles(3));
        assert_eq!(
            vec![Cycles(1), Cycles(2), Cycles(3)]
                .into_iter()
                .sum::<Cycles>(),
            Cycles(6)
        );
    }

    #[test]
    fn cycles_to_seconds() {
        // 1000 cycles at 1 GHz is 1 microsecond.
        let t = Cycles(1000).to_seconds(1000);
        assert!((t - 1.0e-6).abs() < 1e-15);
    }

    #[test]
    fn cycles_display() {
        assert_eq!(Cycles(42).to_string(), "42 cycles");
    }

    #[test]
    fn cycles_saturating() {
        assert_eq!(Cycles(u64::MAX).saturating_add(Cycles(1)), Cycles(u64::MAX));
    }
}
