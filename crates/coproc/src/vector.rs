//! Vector unit: element-wise operations, activation functions and precision
//! conversion.
//!
//! Both core kinds carry a vector unit executing a subset of the RISC-V
//! vector ISA. Vector instructions share the matrix registers on CC cores
//! and have an element width of `C` lanes, so one instruction processes one
//! row of a matrix register per cycle (plus a small issue overhead).

use crate::quant::bf16_round;
use crate::Cycles;
use edgemm_isa::{ActivationFn, Precision, VectorOp};

/// Result of executing a vector operation.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorUnitResult {
    /// Output elements.
    pub output: Vec<f32>,
    /// Cycles spent, assuming `lanes` elements are processed per cycle.
    pub cycles: Cycles,
}

/// Functional + timing model of the vector unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorUnit {
    lanes: usize,
    /// Fixed instruction issue overhead in cycles.
    issue_overhead: u64,
}

impl VectorUnit {
    /// Create a vector unit with `lanes` parallel lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "vector unit must have at least one lane");
        VectorUnit {
            lanes,
            issue_overhead: 1,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycle cost of processing `n` elements.
    pub fn cycles_for(&self, n: usize) -> Cycles {
        Cycles(self.issue_overhead + n.div_ceil(self.lanes) as u64)
    }

    /// SiLU (swish) activation.
    pub fn silu(x: f32) -> f32 {
        x / (1.0 + (-x).exp())
    }

    /// GELU activation (tanh approximation, as used by ViT encoders).
    pub fn gelu(x: f32) -> f32 {
        0.5 * x * (1.0 + ((2.0 / std::f32::consts::PI).sqrt() * (x + 0.044715 * x * x * x)).tanh())
    }

    /// Apply an activation function element-wise.
    pub fn activation(&self, act: ActivationFn, x: &[f32]) -> VectorUnitResult {
        let output = x
            .iter()
            .map(|&v| match act {
                ActivationFn::Silu => Self::silu(v),
                ActivationFn::Gelu => Self::gelu(v),
                ActivationFn::Relu => v.max(0.0),
                ActivationFn::Identity => v,
            })
            .map(bf16_round)
            .collect();
        VectorUnitResult {
            output,
            cycles: self.cycles_for(x.len()),
        }
    }

    /// Execute a two-operand element-wise operation.
    ///
    /// For [`VectorOp::Activation`] and [`VectorOp::Convert`] the second
    /// operand is ignored, matching the ISA encoding.
    ///
    /// # Panics
    ///
    /// Panics if the two operands have different lengths for a two-operand op.
    pub fn execute(&self, op: VectorOp, a: &[f32], b: &[f32]) -> VectorUnitResult {
        match op {
            VectorOp::Activation(act) => self.activation(act, a),
            VectorOp::Convert(prec) => self.convert(prec, a),
            VectorOp::Add | VectorOp::Sub | VectorOp::Mul | VectorOp::Max => {
                assert_eq!(a.len(), b.len(), "operand length mismatch");
                let output = a
                    .iter()
                    .zip(b)
                    .map(|(&x, &y)| match op {
                        VectorOp::Add => x + y,
                        VectorOp::Sub => x - y,
                        VectorOp::Mul => x * y,
                        VectorOp::Max => x.max(y),
                        _ => unreachable!(),
                    })
                    .map(bf16_round)
                    .collect();
                VectorUnitResult {
                    output,
                    cycles: self.cycles_for(a.len()),
                }
            }
        }
    }

    /// Convert precision (the functional effect is rounding to the target
    /// precision and widening back to `f32`).
    pub fn convert(&self, prec: Precision, x: &[f32]) -> VectorUnitResult {
        let output = x
            .iter()
            .map(|&v| match prec {
                Precision::Fp32 => v,
                Precision::Bf16 => bf16_round(v),
                Precision::Int8 => v.round().clamp(-128.0, 127.0),
                Precision::Int4 => v.round().clamp(-8.0, 7.0),
            })
            .collect();
        VectorUnitResult {
            output,
            cycles: self.cycles_for(x.len()),
        }
    }
}

impl Default for VectorUnit {
    fn default() -> Self {
        Self::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silu_reference_points() {
        assert!((VectorUnit::silu(0.0)).abs() < 1e-6);
        assert!((VectorUnit::silu(10.0) - 10.0).abs() < 1e-3);
        assert!(VectorUnit::silu(-10.0).abs() < 1e-3);
        // silu(1) = 1 / (1 + e^-1) = 0.7310...
        assert!((VectorUnit::silu(1.0) - 0.731_058_6).abs() < 1e-4);
    }

    #[test]
    fn gelu_reference_points() {
        assert!((VectorUnit::gelu(0.0)).abs() < 1e-6);
        assert!((VectorUnit::gelu(5.0) - 5.0).abs() < 1e-3);
        assert!(VectorUnit::gelu(-5.0).abs() < 1e-2);
    }

    #[test]
    fn elementwise_ops() {
        let vu = VectorUnit::new(4);
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 0.5, -3.0];
        assert_eq!(
            vu.execute(VectorOp::Add, &a, &b).output,
            vec![5.0, 2.5, 0.0]
        );
        assert_eq!(
            vu.execute(VectorOp::Sub, &a, &b).output,
            vec![-3.0, 1.5, 6.0]
        );
        assert_eq!(
            vu.execute(VectorOp::Mul, &a, &b).output,
            vec![4.0, 1.0, -9.0]
        );
        assert_eq!(
            vu.execute(VectorOp::Max, &a, &b).output,
            vec![4.0, 2.0, 3.0]
        );
    }

    #[test]
    fn relu_and_identity() {
        let vu = VectorUnit::default();
        let x = [-1.0, 0.0, 2.0];
        assert_eq!(
            vu.activation(ActivationFn::Relu, &x).output,
            vec![0.0, 0.0, 2.0]
        );
        assert_eq!(
            vu.activation(ActivationFn::Identity, &x).output,
            vec![-1.0, 0.0, 2.0]
        );
    }

    #[test]
    fn convert_clamps() {
        let vu = VectorUnit::default();
        let x = [300.0, -300.0, 3.4];
        assert_eq!(
            vu.convert(Precision::Int8, &x).output,
            vec![127.0, -128.0, 3.0]
        );
        assert_eq!(vu.convert(Precision::Int4, &x).output, vec![7.0, -8.0, 3.0]);
    }

    #[test]
    fn cycle_model_scales_with_length_and_lanes() {
        let narrow = VectorUnit::new(4);
        let wide = VectorUnit::new(16);
        assert_eq!(narrow.cycles_for(16), Cycles(1 + 4));
        assert_eq!(wide.cycles_for(16), Cycles(1 + 1));
        assert!(narrow.cycles_for(64) > narrow.cycles_for(16));
        assert_eq!(narrow.lanes(), 4);
    }

    #[test]
    #[should_panic(expected = "operand length mismatch")]
    fn mismatched_operands_panic() {
        VectorUnit::default().execute(VectorOp::Add, &[1.0], &[1.0, 2.0]);
    }
}
