//! Criterion benches of the coprocessor functional/timing models: one per
//! kernel class the paper's figures depend on (SA GEMM, CIM GEMV, pruner).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use edgemm::arch::{CimGeometry, SystolicGeometry};
use edgemm::coproc::{ActAwarePruner, CimMacro, SystolicArray};

fn bench_systolic_gemm(c: &mut Criterion) {
    let sa = SystolicArray::new(SystolicGeometry::paper_default());
    let mut group = c.benchmark_group("systolic_gemm");
    group.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let a = vec![0.5f32; n * n];
        let b = vec![0.25f32; n * n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, &n| {
            bencher.iter(|| sa.gemm(black_box(&a), black_box(&b), n, n, n));
        });
    }
    group.finish();
}

fn bench_cim_gemv(c: &mut Criterion) {
    let mut group = c.benchmark_group("cim_gemv");
    group.sample_size(10);
    for &k in &[512usize, 2048] {
        let n = 512;
        let mut cim = CimMacro::new(CimGeometry::paper_default());
        let weights: Vec<f32> = (0..k * n).map(|i| (i % 13) as f32 * 0.01).collect();
        cim.load_weights(&weights, k, n);
        let x: Vec<f32> = (0..k).map(|i| (i % 7) as f32 * 0.1).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bencher, _| {
            bencher.iter(|| cim.gemv(black_box(&x)));
        });
    }
    group.finish();
}

fn bench_hardware_pruner(c: &mut Criterion) {
    let pruner = ActAwarePruner::default();
    let slice: Vec<f32> = (0..2048)
        .map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.01)
        .collect();
    c.bench_function("act_aware_pruner_2048", |b| {
        b.iter(|| pruner.prune(black_box(&slice), 128, 16, 0))
    });
}

criterion_group!(
    benches,
    bench_systolic_gemm,
    bench_cim_gemv,
    bench_hardware_pruner
);
criterion_main!(benches);
