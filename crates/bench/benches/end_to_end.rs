//! Criterion benches regenerating the headline experiments: one bench per
//! table/figure that involves the full simulator, so regressions in the
//! model's own runtime are visible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use edgemm::figures;
use edgemm::{EdgeMm, RequestOptions};
use edgemm_mllm::{zoo, ModelWorkload};

fn bench_fig11_hetero(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("hetero_comparison", |b| {
        b.iter(|| figures::fig11_hetero(black_box(&zoo::sphinx_tiny()), 64))
    });
    group.finish();
}

fn bench_fig12_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("pruning_evaluation", |b| {
        b.iter(|| figures::fig12_pruning(black_box(&zoo::sphinx_tiny()), 512, 1024, 7))
    });
    group.finish();
}

fn bench_fig13_management(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.bench_function("bandwidth_sweep", |b| {
        b.iter(|| figures::fig13_bandwidth(black_box(&zoo::sphinx_tiny()), &[16, 128, 1024]))
    });
    group.finish();
}

fn bench_table2_request(c: &mut Criterion) {
    let system = EdgeMm::paper_default();
    let workload = ModelWorkload::new(zoo::sphinx_tiny(), 20, 64);
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("edgemm_request", |b| {
        b.iter(|| system.run(black_box(&workload), RequestOptions::default()))
    });
    group.bench_function("edgemm_request_pruned", |b| {
        b.iter(|| system.run(black_box(&workload), RequestOptions::with_pruning()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig11_hetero,
    bench_fig12_pruning,
    bench_fig13_management,
    bench_table2_request
);
criterion_main!(benches);
