//! Serving sweep: latency percentiles, throughput and SLO attainment of the
//! multi-request simulator over arrival rate x batch capacity x scheduling
//! policy x admission mode x memory configuration.
//!
//! Not a paper artifact — this probes the serving behaviour the ROADMAP's
//! north star targets (heavy concurrent traffic with latency deadlines) on
//! top of the paper's design point. Three sections:
//!
//! 1. **Latency sweep**: p50/p95/p99 end-to-end latency and tokens/s per
//!    (arrival rate, batch cap, policy) on an interactive trace.
//! 2. **SLO sweep**: per-class TTFT/TPOT tails, SLO attainment and
//!    deadline-miss/reject counts per (arrival rate, scheduling stack) on a
//!    mixed interactive + background trace — the arrival-rate axis shows
//!    where each stack stops holding its deadlines.
//! 3. **Memory pressure**: attainment, throughput, peak resident KV and
//!    chunk-preemption counts per (KV budget x prefill chunk size) on the
//!    overload trace, with batch membership governed by the KV pool instead
//!    of a constant cap — shows where the byte budget starts costing
//!    deadlines and how much chunked prefill buys back.
//! 4. **Paged vs reserved**: the same overload trace per (KV budget x
//!    allocation mode) — whole-request peak reservation against paged
//!    block allocation with mid-decode eviction — splitting the interactive
//!    misses into TTFT and TPOT so the decode-slot revocation win (and the
//!    re-prefill recompute tax it pays) are both visible.
//! 5. **Fleet routing**: the multi-tenant overload trace through the fleet
//!    gateway per (replica count x routing policy) — SLO attainment, load
//!    imbalance and cross-replica restarted-prefill tokens show what each
//!    router trades at 4-16 replicas.
//!
//! Every section computes its sweep points through the `edgemm-exec` pool
//! (`Pool::par_map`), so independent points run on all host cores while the
//! printed rows keep their serial order — results are byte-identical under
//! any `EDGEMM_THREADS` setting (the `parallel_sweep_is_byte_identical_to_serial`
//! property pins this).
//!
//! Set `EDGEMM_SMOKE=1` to run a small, fast configuration (used by CI and
//! the bin smoke test). See `docs/serving.md` and `docs/memory.md` for how
//! to read the output.
//!
//! Set `EDGEMM_BENCH_JSON=1` to also time the pinned serving workloads and
//! write `BENCH_serving.json` — requests simulated per wall-second for the
//! three golden points (each with `speedup_vs_seed` against its seed-engine
//! baseline), a `fleet` entry timing the 16-replica golden routing point
//! across every policy, plus a `full_sweep` entry timing the whole
//! five-section sweep serially and at `EDGEMM_THREADS`, whose ratio is the
//! recorded `parallel_speedup` (ROADMAP direction 3).

use edgemm::serve::{merge, AdmissionControl, PolicyKind, ServeRequest, TraceConfig};
use edgemm::units::Bytes;
use edgemm::{EdgeMm, RoutingKind, ServeOptions};
use edgemm_exec::Pool;
use edgemm_mllm::zoo;

struct Sweep {
    requests: usize,
    rates: Vec<f64>,
    caps: Vec<usize>,
}

fn sweep_scale() -> (Sweep, &'static str) {
    let smoke = std::env::var("EDGEMM_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    if smoke {
        (
            Sweep {
                requests: 12,
                rates: vec![4.0, 16.0],
                caps: vec![1, 8],
            },
            "smoke",
        )
    } else {
        (
            Sweep {
                requests: 64,
                rates: vec![2.0, 8.0, 32.0],
                caps: vec![1, 4, 16],
            },
            "full",
        )
    }
}

/// The scheduling stacks the SLO sweep compares: the pre-SLO baseline, plain
/// EDF, and EDF with each hopeless-request admission mode.
const STACKS: [(PolicyKind, AdmissionControl); 4] = [
    (PolicyKind::Fcfs, AdmissionControl::Serve),
    (PolicyKind::EarliestDeadlineFirst, AdmissionControl::Serve),
    (PolicyKind::EarliestDeadlineFirst, AdmissionControl::Defer),
    (PolicyKind::EarliestDeadlineFirst, AdmissionControl::Reject),
];

/// The pre-rendered rows of all four sweep sections, in print order. Row
/// *computation* (the simulator work) fans out over the exec pool; row
/// *text* is assembled per point, so the printed output is independent of
/// completion order.
#[derive(Debug, PartialEq)]
struct SweepRows {
    latency: Vec<String>,
    slo: Vec<String>,
    memory: Vec<String>,
    paged: Vec<String>,
    fleet: Vec<String>,
}

impl SweepRows {
    fn points(&self) -> usize {
        self.latency.len()
            + self.slo.len()
            + self.memory.len()
            + self.paged.len()
            + self.fleet.len()
    }
}

/// Computes every section's rows through `pool`. This is the whole sweep's
/// simulator work in one call — the unit the `full_sweep` bench entry times
/// serially and in parallel.
fn sweep_rows(system: &EdgeMm, sweep: &Sweep, smoke: bool, pool: &Pool) -> SweepRows {
    SweepRows {
        latency: latency_rows(system, sweep, pool),
        slo: slo_rows(system, sweep, pool),
        memory: memory_rows(system, sweep, smoke, pool),
        paged: paged_rows(system, sweep, smoke, pool),
        fleet: fleet_rows(system, smoke, pool),
    }
}

fn latency_rows(system: &EdgeMm, sweep: &Sweep, pool: &Pool) -> Vec<String> {
    let model = zoo::sphinx_tiny();
    let points: Vec<(f64, usize, PolicyKind)> = sweep
        .rates
        .iter()
        .flat_map(|&rate| {
            sweep.caps.iter().flat_map(move |&cap| {
                PolicyKind::ALL
                    .into_iter()
                    .map(move |kind| (rate, cap, kind))
            })
        })
        .collect();
    pool.par_map(&points, |_, &(rate, cap, kind)| {
        let trace = TraceConfig::interactive(sweep.requests, rate, 11);
        let options = ServeOptions {
            batch_cap: Some(cap),
            policy: kind,
            ..ServeOptions::with_pruning()
        };
        let report = system.serve_trace(&model, &trace, options);
        format!(
            "{:>8.1} {:>5} {:>16} {:>7.0}ms {:>7.0}ms {:>7.0}ms {:>9.1} {:>7.2} {:>6}",
            rate,
            cap,
            kind.name(),
            report.p50_latency_s() * 1e3,
            report.p95_latency_s() * 1e3,
            report.p99_latency_s() * 1e3,
            report.tokens_per_second(),
            report.mean_batch_occupancy(),
            report.max_queue_depth(),
        )
    })
}

fn latency_sweep(rows: &[String], sweep: &Sweep, scale: &str) {
    println!(
        "== Serving sweep on SPHINX-Tiny ({scale}: {} requests/point, pruning on) ==",
        sweep.requests
    );
    println!(
        "{:>8} {:>5} {:>16} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6}",
        "rate/s", "cap", "policy", "p50", "p95", "p99", "tok/s", "occ", "depth"
    );
    for row in rows {
        println!("{row}");
    }
    println!(
        "\n(cap = decode stream-batch capacity; occ = mean streams per decode step; \
         depth = max requests waiting)"
    );
}

fn slo_rows(system: &EdgeMm, sweep: &Sweep, pool: &Pool) -> Vec<String> {
    let model = zoo::sphinx_tiny();
    let background = (sweep.requests / 4).max(1);
    let points: Vec<(f64, PolicyKind, AdmissionControl)> = sweep
        .rates
        .iter()
        .flat_map(|&rate| {
            STACKS
                .into_iter()
                .map(move |(policy, admission)| (rate, policy, admission))
        })
        .collect();
    pool.par_map(&points, |_, &(rate, policy, admission)| {
        // Regenerated per point: trace generation is seeded, so every stack
        // at the same rate sees the identical request stream.
        let mixed = merge(&[
            TraceConfig::interactive(sweep.requests, rate, 11).generate(),
            TraceConfig::background(background, rate / 4.0, 12).generate(),
        ]);
        let options = ServeOptions {
            policy,
            admission,
            ..ServeOptions::with_pruning()
        };
        let report = system.serve(&model, &mixed, options);
        let stack = format!("{}/{}", policy.name(), admission.name());
        report
            .class_stats()
            .into_iter()
            .map(|class| {
                format!(
                    "{:>8.1} {:>12} {:>12} {:>6.1} {:>5} {:>4} {:>6.0}ms {:>6.0}ms {:>6.1}ms {:>6.1}ms",
                    rate,
                    stack,
                    class.priority.name(),
                    class.attainment * 100.0,
                    class.misses,
                    class.rejected,
                    class.p95_ttft_s * 1e3,
                    class.p99_ttft_s * 1e3,
                    class.p95_tpot_s * 1e3,
                    class.p99_tpot_s * 1e3,
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    })
}

fn slo_sweep(rows: &[String], sweep: &Sweep) {
    let background = (sweep.requests / 4).max(1);
    println!(
        "\n== SLO sweep (mixed traffic: {} interactive + {} background requests/point, cap 8) ==",
        sweep.requests, background
    );
    println!(
        "{:>8} {:>12} {:>12} {:>6} {:>5} {:>4} {:>8} {:>8} {:>8} {:>8}",
        "rate/s",
        "stack",
        "class",
        "att%",
        "miss",
        "rej",
        "p95ttft",
        "p99ttft",
        "p95tpot",
        "p99tpot"
    );
    for row in rows {
        println!("{row}");
    }
    println!(
        "\n(att = SLO attainment over submitted requests, rejects count as misses; \
         miss = completed-but-missed + rejected;\n stack = CC policy / admission mode — \
         interactive class: 250 ms TTFT, 30 ms TPOT; background class: no deadlines)"
    );
}

/// The KV-budget x chunk-size grid of the memory-pressure section. `None`
/// entries are the unbounded / unchunked references.
fn memory_grid(smoke: bool) -> (Vec<Option<u64>>, Vec<Option<usize>>) {
    const MIB: u64 = 1 << 20;
    // Chunk 320 ~ one interactive SPHINX-Tiny prompt (288 vision + a few
    // dozen text tokens): interactive prefills stay 1-2 chunks (little
    // self-overhead) while long background prompts split into preemptible
    // pieces. Finer chunks buy more preemption points but tax every
    // request's own prefill.
    if smoke {
        (vec![Some(16 * MIB), None], vec![Some(320), None])
    } else {
        (
            vec![Some(16 * MIB), Some(48 * MIB), None],
            vec![Some(160), Some(320), None],
        )
    }
}

/// The shared overload trace of the memory-pressure and paged sections:
/// interactive traffic plus long-prompt background work (dashcam-summary-
/// sized: 512-768 text tokens on top of the 288 vision tokens) — the
/// traffic whose unpreemptible prefills starve interactive TTFT and whose
/// KV footprints stress the pool. Fixed at 12 req/s — past the serial CC
/// stage's knee (scheduling and memory policy matter) but short of
/// free-fall saturation, where every queued request is already hopeless and
/// preemption has nothing left to save. The same regime as the pinned
/// golden_memory_pressure_point.
fn overload_trace(sweep: &Sweep, rate: f64) -> Vec<ServeRequest> {
    let background = (sweep.requests / 4).max(1);
    merge(&[
        TraceConfig::interactive(sweep.requests, rate, 11).generate(),
        TraceConfig {
            text_tokens: (512, 768),
            ..TraceConfig::background(background, rate / 4.0, 12)
        }
        .generate(),
    ])
}

fn memory_rows(system: &EdgeMm, sweep: &Sweep, smoke: bool, pool: &Pool) -> Vec<String> {
    let model = zoo::sphinx_tiny();
    let mixed = overload_trace(sweep, 12.0);
    let (budgets, chunks) = memory_grid(smoke);
    let points: Vec<(Option<u64>, Option<usize>)> = budgets
        .iter()
        .flat_map(|&budget| chunks.iter().map(move |&chunk| (budget, chunk)))
        .collect();
    pool.par_map(&points, |_, &(budget, chunk)| {
        let options = ServeOptions {
            batch_cap: None,
            chunk_tokens: chunk,
            kv_budget_bytes: budget.map(Bytes::new),
            ..ServeOptions::slo_aware()
        };
        let report = system.serve(&model, &mixed, options);
        format!(
            "{:>8} {:>7} {:>6.1} {:>5} {:>9.1} {:>6.1}M {:>8} {:>6.0}ms",
            budget.map_or("inf".to_string(), |b| format!("{}M", b >> 20)),
            chunk.map_or("whole".to_string(), |c| c.to_string()),
            report.slo_attainment() * 100.0,
            report.deadline_misses(),
            report.tokens_per_second(),
            report.peak_kv_bytes.as_f64() / (1u64 << 20) as f64,
            report.preemptions,
            report.ttft_percentile_s(95.0) * 1e3,
        )
    })
}

fn memory_sweep(rows: &[String], sweep: &Sweep) {
    let total = sweep.requests + (sweep.requests / 4).max(1);
    println!(
        "\n== Memory pressure (edf/defer, no batch cap: KV budget x prefill chunk, \
         {total} requests at 12/s) =="
    );
    println!(
        "{:>8} {:>7} {:>6} {:>5} {:>9} {:>8} {:>8} {:>8}",
        "kv", "chunk", "att%", "miss", "tok/s", "peakKV", "preempt", "p95ttft"
    );
    for row in rows {
        println!("{row}");
    }
    println!(
        "\n(kv = KV-pool byte budget governing decode-batch admission (inf = unbounded); \
         chunk = prefill chunk tokens\n (whole = unpreemptible); peakKV = high-water \
         resident KV — always within the budget; preempt = chunk-boundary\n preemptions. \
         On-chip tier: 4 MiB of MC SRAM; spilled KV pays the bandwidth penalty.)"
    );
}

fn paged_rows(system: &EdgeMm, sweep: &Sweep, smoke: bool, pool: &Pool) -> Vec<String> {
    use edgemm::serve::{Priority, ServeReport};
    let model = zoo::sphinx_tiny();
    // The same overload regime as the memory-pressure section, under
    // budgets tight enough that a single long-prompt background context
    // rivals (or overflows) the pool.
    let mixed = overload_trace(sweep, 12.0);
    let budgets: &[u64] = if smoke { &[8] } else { &[8, 12, 24] };
    let interactive = |report: &ServeReport, miss: fn(&edgemm::serve::CompletedRequest) -> bool| {
        report
            .completed
            .iter()
            .filter(|c| c.slo.priority == Priority::Interactive && miss(c))
            .count()
            + report.rejected.len()
    };
    let points: Vec<(u64, bool)> = budgets
        .iter()
        .flat_map(|&budget| [false, true].into_iter().map(move |paged| (budget, paged)))
        .collect();
    pool.par_map(&points, |_, &(budget, paged)| {
        let mut options = ServeOptions::memory_aware(Bytes::new(budget << 20), 320);
        if paged {
            options = options.paged(16);
        }
        let report = system.serve(&model, &mixed, options);
        format!(
            "{:>7}M {:>9} {:>6.1} {:>6} {:>6} {:>9.1} {:>6.1}M {:>8} {:>8}",
            budget,
            if paged { "paged" } else { "reserved" },
            report.slo_attainment() * 100.0,
            interactive(&report, |c| !c.meets_ttft()),
            interactive(&report, |c| !c.meets_tpot()),
            report.tokens_per_second(),
            report.peak_kv_bytes.as_f64() / (1u64 << 20) as f64,
            report.evictions,
            report.restarted_prefill_tokens,
        )
    })
}

fn paged_sweep(rows: &[String], sweep: &Sweep) {
    let total = sweep.requests + (sweep.requests / 4).max(1);
    println!(
        "\n== Paged vs reserved (edf/defer, chunk 320, block 16: KV budget x allocation, \
         {total} requests at 12/s) =="
    );
    println!(
        "{:>8} {:>9} {:>6} {:>6} {:>6} {:>9} {:>7} {:>8} {:>8}",
        "kv", "alloc", "att%", "i-ttft", "i-tpot", "tok/s", "peakKV", "evict", "restart"
    );
    for row in rows {
        println!("{row}");
    }
    println!(
        "\n(alloc = KV admission mode: whole-request peak reservation vs 16-token paged blocks \
         with mid-decode\n eviction; i-ttft/i-tpot = interactive TTFT/TPOT deadline misses \
         (rejects count in both); evict =\n mid-decode evictions; restart = re-prefilled \
         tokens evictions forced back through the CC stage.\n Revoking decode slots erases \
         the TPOT misses; the recompute load can add TTFT misses — docs/memory.md\n walks \
         the pinned 8 MiB point by hand.)"
    );
}

/// The multi-tenant overload trace of the fleet section — the full scale is
/// the exact trace `golden_fleet_routing_point` pins (six tenants plus
/// long-prompt background), the smoke scale a quarter of it.
fn fleet_trace(smoke: bool) -> Vec<ServeRequest> {
    let (requests, background) = if smoke { (24, 4) } else { (96, 8) };
    merge(&[
        TraceConfig::multi_tenant(6, requests, 48.0, 23).generate(),
        TraceConfig {
            text_tokens: (512, 768),
            ..TraceConfig::background(background, 12.0, 123)
        }
        .generate(),
    ])
}

/// The fleet serving stack: paged KV with prefix sharing but no spill area,
/// so every eviction recomputes — restarted-prefill tokens measure how much
/// KV each routing policy threw away (`golden_fleet_routing_point` pins the
/// 16-replica cell of this grid).
fn fleet_options() -> ServeOptions {
    ServeOptions {
        prefix_sharing: true,
        ..ServeOptions::memory_aware(Bytes::new(8 << 20), 64).paged(16)
    }
}

fn fleet_rows(system: &EdgeMm, smoke: bool, pool: &Pool) -> Vec<String> {
    let model = zoo::sphinx_tiny();
    let trace = fleet_trace(smoke);
    let options = fleet_options();
    let replica_counts: &[usize] = if smoke { &[2, 4] } else { &[4, 8, 16] };
    let points: Vec<(usize, RoutingKind)> = replica_counts
        .iter()
        .flat_map(|&replicas| {
            RoutingKind::ALL
                .into_iter()
                .map(move |kind| (replicas, kind))
        })
        .collect();
    pool.par_map(&points, |_, &(replicas, kind)| {
        let report = system.serve_fleet(&model, &trace, replicas, kind, options);
        format!(
            "{:>9} {:>16} {:>6.1} {:>8} {:>9.2} {:>8.2}s {:>6}",
            replicas,
            kind.name(),
            report.slo_attainment() * 100.0,
            report.restarted_prefill_tokens(),
            report.load_imbalance(),
            report.makespan_s,
            report.stale_completions,
        )
    })
}

fn fleet_sweep(rows: &[String], smoke: bool) {
    let total = fleet_trace(smoke).len();
    println!(
        "\n== Fleet routing (gateway over N replicas: replica count x policy, \
         {total} multi-tenant requests, 8 MiB paged KV + sharing per replica) =="
    );
    println!(
        "{:>9} {:>16} {:>6} {:>8} {:>9} {:>9} {:>6}",
        "replicas", "routing", "att%", "restart", "imbal", "makespan", "stale"
    );
    for row in rows {
        println!("{row}");
    }
    println!(
        "\n(restart = re-prefilled tokens summed over replicas — duplicated tenant \
         prefixes overflow the paged\n pools and evict; imbal = max replica share x \
         replica count (1.0 = perfectly even); stale = superseded\n completion events \
         the gateway lazily discarded. docs/fleet.md walks the 16-replica row by hand.)"
    );
}

/// Seed baselines for `speedup_vs_seed`, in requests simulated per
/// wall-second, all captured the same way: the seed engine (the PR 5
/// advance-and-scan loop, retained as `ServeSimulator::run_reference`)
/// replaying each section's exact trace and configuration on the CI-class
/// host, 5 timed repeats after an untimed warm-up. The bench-smoke test
/// asserts the checked-in speedups never regress below 1.0.
const SEED_MULTI_TENANT_REQUESTS_PER_S: f64 = 727.7;
/// Seed baseline of `golden_paged_eviction_point`: median of repeated
/// `run_reference` timings on this section's exact trace and config (see
/// [`SEED_MULTI_TENANT_REQUESTS_PER_S`] for the measurement protocol).
const SEED_PAGED_EVICTION_REQUESTS_PER_S: f64 = 4900.0;
/// Seed baseline of `plain_sweep_point` (same protocol).
const SEED_PLAIN_SWEEP_REQUESTS_PER_S: f64 = 17000.0;

/// One timed section: untimed warm-up, then `repeats` timed serves of the
/// same trace, all through one [`ServeSession`](edgemm::ServeSession) so
/// the hot loop reuses the session's pricing caches and scratch
/// allocations instead of re-building them per serve. Returns
/// (wall seconds, requests simulated).
fn time_section(
    system: &EdgeMm,
    trace: &[ServeRequest],
    options: ServeOptions,
    repeats: u32,
) -> (f64, usize) {
    use std::time::Instant;
    let model = zoo::sphinx_tiny();
    let mut session = system.serve_session(&model, options);
    session.serve(trace);
    let start = Instant::now();
    let mut simulated = 0usize;
    for _ in 0..repeats {
        simulated += session.serve(trace).submitted();
    }
    (start.elapsed().as_secs_f64(), simulated)
}

/// Simulator throughput per bench section, written to `BENCH_serving.json`
/// as a JSON array — one entry per pinned workload:
///
/// * `golden_multi_tenant_sharing_point`: 3 tenants plus long-prompt
///   background at an 8 MiB paged budget with prefix sharing and
///   spill-and-restore — the headline point.
/// * `golden_paged_eviction_point`: the paged-eviction overload trace at an
///   8 MiB budget (chunk 320, block 16).
/// * `plain_sweep_point`: the unconstrained continuous-batching sweep cell
///   (interactive trace, constant cap, no memory model).
/// * `fleet`: the 16-replica golden fleet routing point served through
///   every routing policy per repeat — requests routed (dispatched) per
///   wall-second, with the replica count, policy count and worker threads
///   recorded alongside.
/// * `full_sweep`: wall seconds for all five sweep sections' points,
///   computed serially and again at `EDGEMM_THREADS` workers —
///   `parallel_speedup` is the ratio, and the recorded `threads` /
///   `host_parallelism` say what the host could actually offer.
///
/// Each serve section records `speedup_vs_seed` against its seed-engine
/// baseline constant.
///
/// Wall-clock use is deliberate and confined to this bin: the simulated
/// *reports* stay bit-identical across runs and thread counts (the
/// `sim-determinism` and `raw-thread` lints guard the cores); only the
/// host-side speed of producing them varies.
fn bench_json(system: &EdgeMm, sweep: &Sweep, smoke: bool) {
    use std::time::Instant;
    let repeats = 5u32;
    let multi_tenant_trace = merge(&[
        TraceConfig::multi_tenant(3, 24, 8.0, 19).generate(),
        TraceConfig {
            text_tokens: (512, 768),
            ..TraceConfig::background(4, 3.0, 119)
        }
        .generate(),
    ]);
    let paged_trace = merge(&[
        TraceConfig::interactive(24, 12.0, 11).generate(),
        TraceConfig {
            text_tokens: (512, 768),
            ..TraceConfig::background(8, 3.0, 12)
        }
        .generate(),
    ]);
    let plain_trace = TraceConfig::interactive(32, 16.0, 11).generate();
    let sections: [(&str, &[ServeRequest], ServeOptions, f64); 3] = [
        (
            "golden_multi_tenant_sharing_point",
            &multi_tenant_trace,
            ServeOptions::memory_aware(Bytes::new(8 << 20), 64)
                .paged(16)
                .shared_prefixes(Bytes::new(128 << 20)),
            SEED_MULTI_TENANT_REQUESTS_PER_S,
        ),
        (
            "golden_paged_eviction_point",
            &paged_trace,
            ServeOptions::memory_aware(Bytes::new(8 << 20), 320).paged(16),
            SEED_PAGED_EVICTION_REQUESTS_PER_S,
        ),
        (
            "plain_sweep_point",
            &plain_trace,
            ServeOptions {
                batch_cap: Some(8),
                ..ServeOptions::with_pruning()
            },
            SEED_PLAIN_SWEEP_REQUESTS_PER_S,
        ),
    ];
    let mut entries = Vec::new();
    for (name, trace, options, seed_requests_per_s) in sections {
        let (wall_s, simulated) = time_section(system, trace, options, repeats);
        let requests_per_s = simulated as f64 / wall_s;
        let speedup = requests_per_s / seed_requests_per_s;
        println!("[bench] {name}: {requests_per_s:.1} requests/wall-second ({speedup:.2}x seed)");
        entries.push(format!(
            "  {{\n    \"bench\": \"serving_sweep/{name}\",\n    \
             \"unit\": \"requests_simulated_per_wall_second\",\n    \
             \"requests_per_trace\": {},\n    \"repeats\": {repeats},\n    \
             \"wall_s\": {wall_s:.6},\n    \"requests_per_s\": {requests_per_s:.1},\n    \
             \"speedup_vs_seed\": {speedup:.2}\n  }}",
            trace.len(),
        ));
    }
    // The fleet entry: the golden 16-replica routing point through every
    // policy per repeat. Routing rebuilds each replica's simulator per
    // serve, so this times the whole gateway path (dispatch, projection,
    // completion events), not just the inner serve loop.
    let fleet_trace = fleet_trace(smoke);
    let fleet_replicas = if smoke { 4 } else { 16 };
    let fleet_options = fleet_options();
    let fleet_model = zoo::sphinx_tiny();
    let mut fleet_routed = 0usize;
    let fleet_start = Instant::now();
    for _ in 0..repeats {
        for kind in RoutingKind::ALL {
            fleet_routed += system
                .serve_fleet(
                    &fleet_model,
                    &fleet_trace,
                    fleet_replicas,
                    kind,
                    fleet_options,
                )
                .dispatched();
        }
    }
    let fleet_wall_s = fleet_start.elapsed().as_secs_f64();
    let fleet_requests_per_s = fleet_routed as f64 / fleet_wall_s;
    let fleet_pool = Pool::from_env();
    println!(
        "[bench] fleet: {fleet_requests_per_s:.1} requests routed/wall-second \
         ({fleet_replicas} replicas x {} policies)",
        RoutingKind::ALL.len()
    );
    entries.push(format!(
        "  {{\n    \"bench\": \"serving_sweep/fleet\",\n    \
         \"unit\": \"fleet_requests_routed_per_wall_second\",\n    \
         \"requests_per_trace\": {},\n    \"replicas\": {fleet_replicas},\n    \
         \"policies\": {},\n    \"repeats\": {repeats},\n    \
         \"threads\": {},\n    \"wall_s\": {fleet_wall_s:.6},\n    \
         \"requests_per_s\": {fleet_requests_per_s:.1}\n  }}",
        fleet_trace.len(),
        RoutingKind::ALL.len(),
        fleet_pool.threads(),
    ));
    // The full-sweep timing: the printed run in main() already served as
    // the warm-up pass for both timed passes below.
    let serial_start = Instant::now();
    let serial = sweep_rows(system, sweep, smoke, &Pool::serial());
    let serial_wall_s = serial_start.elapsed().as_secs_f64();
    let pool = Pool::from_env();
    let parallel_start = Instant::now();
    let parallel = sweep_rows(system, sweep, smoke, &pool);
    let wall_s = parallel_start.elapsed().as_secs_f64();
    assert_eq!(
        serial, parallel,
        "parallel sweep rows diverged from the serial rows"
    );
    let points = parallel.points();
    let parallel_speedup = serial_wall_s / wall_s;
    println!(
        "[bench] full_sweep: {points} points, serial {serial_wall_s:.2}s, \
         {} thread(s) {wall_s:.2}s ({parallel_speedup:.2}x)",
        pool.threads()
    );
    entries.push(format!(
        "  {{\n    \"bench\": \"serving_sweep/full_sweep\",\n    \
         \"unit\": \"sweep_wall_seconds\",\n    \
         \"points\": {points},\n    \"threads\": {},\n    \
         \"host_parallelism\": {},\n    \"serial_wall_s\": {serial_wall_s:.6},\n    \
         \"wall_s\": {wall_s:.6},\n    \"parallel_speedup\": {parallel_speedup:.2}\n  }}",
        pool.threads(),
        edgemm_exec::host_parallelism(),
    ));
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    let path = "BENCH_serving.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("[bench] wrote {path}"),
        Err(e) => eprintln!("[bench] failed to write {path}: {e}"),
    }
}

fn main() {
    let (sweep, scale) = sweep_scale();
    let smoke = scale == "smoke";
    let system = EdgeMm::paper_default();
    let pool = Pool::from_env();
    let rows = sweep_rows(&system, &sweep, smoke, &pool);
    latency_sweep(&rows.latency, &sweep, scale);
    slo_sweep(&rows.slo, &sweep);
    memory_sweep(&rows.memory, &sweep);
    paged_sweep(&rows.paged, &sweep);
    fleet_sweep(&rows.fleet, smoke);
    let bench = std::env::var("EDGEMM_BENCH_JSON").is_ok_and(|v| v != "0" && !v.is_empty());
    if bench {
        bench_json(&system, &sweep, smoke);
    }
}
