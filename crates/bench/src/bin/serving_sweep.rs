//! Serving sweep: latency percentiles and throughput of the multi-request
//! simulator over arrival rate x batch capacity x scheduling policy.
//!
//! Not a paper artifact — this probes the serving behaviour the ROADMAP's
//! north star targets (heavy concurrent traffic) on top of the paper's
//! design point. Set `EDGEMM_SMOKE=1` to run a small, fast configuration
//! (used by CI and the bin smoke test).

use edgemm::serve::{PolicyKind, TraceConfig};
use edgemm::{EdgeMm, ServeOptions};
use edgemm_mllm::zoo;

struct Sweep {
    requests: usize,
    rates: Vec<f64>,
    caps: Vec<usize>,
}

fn sweep_scale() -> (Sweep, &'static str) {
    let smoke = std::env::var("EDGEMM_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    if smoke {
        (
            Sweep {
                requests: 12,
                rates: vec![4.0, 16.0],
                caps: vec![1, 8],
            },
            "smoke",
        )
    } else {
        (
            Sweep {
                requests: 64,
                rates: vec![2.0, 8.0, 32.0],
                caps: vec![1, 4, 16],
            },
            "full",
        )
    }
}

fn main() {
    let (sweep, scale) = sweep_scale();
    let system = EdgeMm::paper_default();
    let model = zoo::sphinx_tiny();
    println!(
        "== Serving sweep on SPHINX-Tiny ({scale}: {} requests/point, pruning on) ==",
        sweep.requests
    );
    println!(
        "{:>8} {:>5} {:>16} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6}",
        "rate/s", "cap", "policy", "p50", "p95", "p99", "tok/s", "occ", "depth"
    );
    for &rate in &sweep.rates {
        for &cap in &sweep.caps {
            for kind in PolicyKind::ALL {
                let trace = TraceConfig::interactive(sweep.requests, rate, 11);
                let options = ServeOptions {
                    batch_cap: cap,
                    policy: kind,
                    ..ServeOptions::with_pruning()
                };
                let report = system.serve_trace(&model, &trace, options);
                println!(
                    "{:>8.1} {:>5} {:>16} {:>7.0}ms {:>7.0}ms {:>7.0}ms {:>9.1} {:>7.2} {:>6}",
                    rate,
                    cap,
                    kind.name(),
                    report.p50_latency_s() * 1e3,
                    report.p95_latency_s() * 1e3,
                    report.p99_latency_s() * 1e3,
                    report.tokens_per_second(),
                    report.mean_batch_occupancy(),
                    report.max_queue_depth(),
                );
            }
        }
    }
    println!(
        "\n(cap = decode stream-batch capacity; occ = mean streams per decode step; \
         depth = max requests waiting)"
    );
}
