//! Serving sweep: latency percentiles, throughput and SLO attainment of the
//! multi-request simulator over arrival rate x batch capacity x scheduling
//! policy x admission mode x memory configuration.
//!
//! Not a paper artifact — this probes the serving behaviour the ROADMAP's
//! north star targets (heavy concurrent traffic with latency deadlines) on
//! top of the paper's design point. Three sections:
//!
//! 1. **Latency sweep**: p50/p95/p99 end-to-end latency and tokens/s per
//!    (arrival rate, batch cap, policy) on an interactive trace.
//! 2. **SLO sweep**: per-class TTFT/TPOT tails, SLO attainment and
//!    deadline-miss/reject counts per (arrival rate, scheduling stack) on a
//!    mixed interactive + background trace — the arrival-rate axis shows
//!    where each stack stops holding its deadlines.
//! 3. **Memory pressure**: attainment, throughput, peak resident KV and
//!    chunk-preemption counts per (KV budget x prefill chunk size) on the
//!    overload trace, with batch membership governed by the KV pool instead
//!    of a constant cap — shows where the byte budget starts costing
//!    deadlines and how much chunked prefill buys back.
//! 4. **Paged vs reserved**: the same overload trace per (KV budget x
//!    allocation mode) — whole-request peak reservation against paged
//!    block allocation with mid-decode eviction — splitting the interactive
//!    misses into TTFT and TPOT so the decode-slot revocation win (and the
//!    re-prefill recompute tax it pays) are both visible.
//!
//! Set `EDGEMM_SMOKE=1` to run a small, fast configuration (used by CI and
//! the bin smoke test). See `docs/serving.md` and `docs/memory.md` for how
//! to read the output.
//!
//! Set `EDGEMM_BENCH_JSON=1` to also time the golden multi-tenant sweep
//! point (sharing + spill-and-restore at an 8 MiB paged budget) and write
//! `BENCH_serving.json` — requests simulated per wall-second, the repo's
//! first checked-in perf data point (ROADMAP direction 3).

use edgemm::serve::{merge, AdmissionControl, PolicyKind, TraceConfig};
use edgemm::units::Bytes;
use edgemm::{EdgeMm, ServeOptions};
use edgemm_mllm::zoo;

struct Sweep {
    requests: usize,
    rates: Vec<f64>,
    caps: Vec<usize>,
}

fn sweep_scale() -> (Sweep, &'static str) {
    let smoke = std::env::var("EDGEMM_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    if smoke {
        (
            Sweep {
                requests: 12,
                rates: vec![4.0, 16.0],
                caps: vec![1, 8],
            },
            "smoke",
        )
    } else {
        (
            Sweep {
                requests: 64,
                rates: vec![2.0, 8.0, 32.0],
                caps: vec![1, 4, 16],
            },
            "full",
        )
    }
}

/// The scheduling stacks the SLO sweep compares: the pre-SLO baseline, plain
/// EDF, and EDF with each hopeless-request admission mode.
const STACKS: [(PolicyKind, AdmissionControl); 4] = [
    (PolicyKind::Fcfs, AdmissionControl::Serve),
    (PolicyKind::EarliestDeadlineFirst, AdmissionControl::Serve),
    (PolicyKind::EarliestDeadlineFirst, AdmissionControl::Defer),
    (PolicyKind::EarliestDeadlineFirst, AdmissionControl::Reject),
];

fn latency_sweep(system: &EdgeMm, sweep: &Sweep, scale: &str) {
    let model = zoo::sphinx_tiny();
    println!(
        "== Serving sweep on SPHINX-Tiny ({scale}: {} requests/point, pruning on) ==",
        sweep.requests
    );
    println!(
        "{:>8} {:>5} {:>16} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6}",
        "rate/s", "cap", "policy", "p50", "p95", "p99", "tok/s", "occ", "depth"
    );
    for &rate in &sweep.rates {
        for &cap in &sweep.caps {
            for kind in PolicyKind::ALL {
                let trace = TraceConfig::interactive(sweep.requests, rate, 11);
                let options = ServeOptions {
                    batch_cap: Some(cap),
                    policy: kind,
                    ..ServeOptions::with_pruning()
                };
                let report = system.serve_trace(&model, &trace, options);
                println!(
                    "{:>8.1} {:>5} {:>16} {:>7.0}ms {:>7.0}ms {:>7.0}ms {:>9.1} {:>7.2} {:>6}",
                    rate,
                    cap,
                    kind.name(),
                    report.p50_latency_s() * 1e3,
                    report.p95_latency_s() * 1e3,
                    report.p99_latency_s() * 1e3,
                    report.tokens_per_second(),
                    report.mean_batch_occupancy(),
                    report.max_queue_depth(),
                );
            }
        }
    }
    println!(
        "\n(cap = decode stream-batch capacity; occ = mean streams per decode step; \
         depth = max requests waiting)"
    );
}

fn slo_sweep(system: &EdgeMm, sweep: &Sweep) {
    let model = zoo::sphinx_tiny();
    let background = (sweep.requests / 4).max(1);
    println!(
        "\n== SLO sweep (mixed traffic: {} interactive + {} background requests/point, cap 8) ==",
        sweep.requests, background
    );
    println!(
        "{:>8} {:>12} {:>12} {:>6} {:>5} {:>4} {:>8} {:>8} {:>8} {:>8}",
        "rate/s",
        "stack",
        "class",
        "att%",
        "miss",
        "rej",
        "p95ttft",
        "p99ttft",
        "p95tpot",
        "p99tpot"
    );
    for &rate in &sweep.rates {
        let mixed = merge(&[
            TraceConfig::interactive(sweep.requests, rate, 11).generate(),
            TraceConfig::background(background, rate / 4.0, 12).generate(),
        ]);
        for (policy, admission) in STACKS {
            let options = ServeOptions {
                policy,
                admission,
                ..ServeOptions::with_pruning()
            };
            let report = system.serve(&model, &mixed, options);
            let stack = format!("{}/{}", policy.name(), admission.name());
            for class in report.class_stats() {
                println!(
                    "{:>8.1} {:>12} {:>12} {:>6.1} {:>5} {:>4} {:>6.0}ms {:>6.0}ms {:>6.1}ms {:>6.1}ms",
                    rate,
                    stack,
                    class.priority.name(),
                    class.attainment * 100.0,
                    class.misses,
                    class.rejected,
                    class.p95_ttft_s * 1e3,
                    class.p99_ttft_s * 1e3,
                    class.p95_tpot_s * 1e3,
                    class.p99_tpot_s * 1e3,
                );
            }
        }
    }
    println!(
        "\n(att = SLO attainment over submitted requests, rejects count as misses; \
         miss = completed-but-missed + rejected;\n stack = CC policy / admission mode — \
         interactive class: 250 ms TTFT, 30 ms TPOT; background class: no deadlines)"
    );
}

/// The KV-budget x chunk-size grid of the memory-pressure section. `None`
/// entries are the unbounded / unchunked references.
fn memory_grid(smoke: bool) -> (Vec<Option<u64>>, Vec<Option<usize>>) {
    const MIB: u64 = 1 << 20;
    // Chunk 320 ~ one interactive SPHINX-Tiny prompt (288 vision + a few
    // dozen text tokens): interactive prefills stay 1-2 chunks (little
    // self-overhead) while long background prompts split into preemptible
    // pieces. Finer chunks buy more preemption points but tax every
    // request's own prefill.
    if smoke {
        (vec![Some(16 * MIB), None], vec![Some(320), None])
    } else {
        (
            vec![Some(16 * MIB), Some(48 * MIB), None],
            vec![Some(160), Some(320), None],
        )
    }
}

fn memory_sweep(system: &EdgeMm, sweep: &Sweep, smoke: bool) {
    let model = zoo::sphinx_tiny();
    // Fixed at 12 req/s — past the serial CC stage's knee (scheduling and
    // memory policy matter) but short of free-fall saturation, where every
    // queued request is already hopeless and preemption has nothing left to
    // save. The same regime as the pinned golden_memory_pressure_point.
    let rate = 12.0;
    let background = (sweep.requests / 4).max(1);
    // Long-prompt background work (dashcam-summary-sized: 512-768 text
    // tokens on top of the 288 vision tokens) — the traffic whose
    // unpreemptible prefills starve interactive TTFT and whose KV
    // footprints stress the pool.
    let long_background = TraceConfig {
        text_tokens: (512, 768),
        ..TraceConfig::background(background, rate / 4.0, 12)
    };
    let mixed = merge(&[
        TraceConfig::interactive(sweep.requests, rate, 11).generate(),
        long_background.generate(),
    ]);
    println!(
        "\n== Memory pressure (edf/defer, no batch cap: KV budget x prefill chunk, \
         {} requests at {rate:.0}/s) ==",
        mixed.len()
    );
    println!(
        "{:>8} {:>7} {:>6} {:>5} {:>9} {:>8} {:>8} {:>8}",
        "kv", "chunk", "att%", "miss", "tok/s", "peakKV", "preempt", "p95ttft"
    );
    let (budgets, chunks) = memory_grid(smoke);
    for &budget in &budgets {
        for &chunk in &chunks {
            let options = ServeOptions {
                batch_cap: None,
                chunk_tokens: chunk,
                kv_budget_bytes: budget.map(Bytes::new),
                ..ServeOptions::slo_aware()
            };
            let report = system.serve(&model, &mixed, options);
            println!(
                "{:>8} {:>7} {:>6.1} {:>5} {:>9.1} {:>6.1}M {:>8} {:>6.0}ms",
                budget.map_or("inf".to_string(), |b| format!("{}M", b >> 20)),
                chunk.map_or("whole".to_string(), |c| c.to_string()),
                report.slo_attainment() * 100.0,
                report.deadline_misses(),
                report.tokens_per_second(),
                report.peak_kv_bytes.as_f64() / (1u64 << 20) as f64,
                report.preemptions,
                report.ttft_percentile_s(95.0) * 1e3,
            );
        }
    }
    println!(
        "\n(kv = KV-pool byte budget governing decode-batch admission (inf = unbounded); \
         chunk = prefill chunk tokens\n (whole = unpreemptible); peakKV = high-water \
         resident KV — always within the budget; preempt = chunk-boundary\n preemptions. \
         On-chip tier: 4 MiB of MC SRAM; spilled KV pays the bandwidth penalty.)"
    );
}

fn paged_sweep(system: &EdgeMm, sweep: &Sweep, smoke: bool) {
    use edgemm::serve::{Priority, ServeReport};
    let model = zoo::sphinx_tiny();
    // The same overload regime as the memory-pressure section, under
    // budgets tight enough that a single long-prompt background context
    // rivals (or overflows) the pool.
    let rate = 12.0;
    let background = (sweep.requests / 4).max(1);
    let mixed = merge(&[
        TraceConfig::interactive(sweep.requests, rate, 11).generate(),
        TraceConfig {
            text_tokens: (512, 768),
            ..TraceConfig::background(background, rate / 4.0, 12)
        }
        .generate(),
    ]);
    println!(
        "\n== Paged vs reserved (edf/defer, chunk 320, block 16: KV budget x allocation, \
         {} requests at {rate:.0}/s) ==",
        mixed.len()
    );
    println!(
        "{:>8} {:>9} {:>6} {:>6} {:>6} {:>9} {:>7} {:>8} {:>8}",
        "kv", "alloc", "att%", "i-ttft", "i-tpot", "tok/s", "peakKV", "evict", "restart"
    );
    let budgets: &[u64] = if smoke { &[8] } else { &[8, 12, 24] };
    let interactive = |report: &ServeReport, miss: fn(&edgemm::serve::CompletedRequest) -> bool| {
        report
            .completed
            .iter()
            .filter(|c| c.slo.priority == Priority::Interactive && miss(c))
            .count()
            + report.rejected.len()
    };
    for &budget in budgets {
        for paged in [false, true] {
            let mut options = ServeOptions::memory_aware(Bytes::new(budget << 20), 320);
            if paged {
                options = options.paged(16);
            }
            let report = system.serve(&model, &mixed, options);
            println!(
                "{:>7}M {:>9} {:>6.1} {:>6} {:>6} {:>9.1} {:>6.1}M {:>8} {:>8}",
                budget,
                if paged { "paged" } else { "reserved" },
                report.slo_attainment() * 100.0,
                interactive(&report, |c| !c.meets_ttft()),
                interactive(&report, |c| !c.meets_tpot()),
                report.tokens_per_second(),
                report.peak_kv_bytes.as_f64() / (1u64 << 20) as f64,
                report.evictions,
                report.restarted_prefill_tokens,
            );
        }
    }
    println!(
        "\n(alloc = KV admission mode: whole-request peak reservation vs 16-token paged blocks \
         with mid-decode\n eviction; i-ttft/i-tpot = interactive TTFT/TPOT deadline misses \
         (rejects count in both); evict =\n mid-decode evictions; restart = re-prefilled \
         tokens evictions forced back through the CC stage.\n Revoking decode slots erases \
         the TPOT misses; the recompute load can add TTFT misses — docs/memory.md\n walks \
         the pinned 8 MiB point by hand.)"
    );
}

/// The golden multi-tenant point's requests-per-wall-second as measured on
/// the seed revision of this repo (pre event-engine; PR 5 reference loop).
/// `speedup_vs_seed` in `BENCH_serving.json` is relative to this number and
/// the bench-smoke test asserts it never regresses below 1.0.
const SEED_REQUESTS_PER_S: f64 = 727.7;

/// One timed section: untimed warm-up, then `repeats` timed serves of the
/// same trace. Returns (wall seconds, requests simulated).
fn time_section(
    system: &EdgeMm,
    trace: &[edgemm::serve::ServeRequest],
    options: ServeOptions,
    repeats: u32,
) -> (f64, usize) {
    use std::time::Instant;
    let model = zoo::sphinx_tiny();
    system.serve(&model, trace, options);
    let start = Instant::now();
    let mut simulated = 0usize;
    for _ in 0..repeats {
        let report = system.serve(&model, trace, options);
        simulated += report.submitted();
    }
    (start.elapsed().as_secs_f64(), simulated)
}

/// Simulator throughput per bench section, written to `BENCH_serving.json`
/// as a JSON array — one entry per pinned workload:
///
/// * `golden_multi_tenant_sharing_point`: 3 tenants plus long-prompt
///   background at an 8 MiB paged budget with prefix sharing and
///   spill-and-restore — the headline point, with `speedup_vs_seed`
///   relative to [`SEED_REQUESTS_PER_S`].
/// * `golden_paged_eviction_point`: the paged-eviction overload trace at an
///   8 MiB budget (chunk 320, block 16).
/// * `plain_sweep_point`: the unconstrained continuous-batching sweep cell
///   (interactive trace, constant cap, no memory model).
///
/// Wall-clock use is deliberate and confined to this bin: the simulated
/// *reports* stay bit-identical across runs (the `sim-determinism` lint
/// guards the cores); only the host-side speed of producing them varies.
fn bench_json(system: &EdgeMm) {
    let repeats = 5u32;
    let multi_tenant_trace = merge(&[
        TraceConfig::multi_tenant(3, 24, 8.0, 19).generate(),
        TraceConfig {
            text_tokens: (512, 768),
            ..TraceConfig::background(4, 3.0, 119)
        }
        .generate(),
    ]);
    let paged_trace = merge(&[
        TraceConfig::interactive(24, 12.0, 11).generate(),
        TraceConfig {
            text_tokens: (512, 768),
            ..TraceConfig::background(8, 3.0, 12)
        }
        .generate(),
    ]);
    let plain_trace = TraceConfig::interactive(32, 16.0, 11).generate();
    let sections: [(&str, &[edgemm::serve::ServeRequest], ServeOptions); 3] = [
        (
            "golden_multi_tenant_sharing_point",
            &multi_tenant_trace,
            ServeOptions::memory_aware(Bytes::new(8 << 20), 64)
                .paged(16)
                .shared_prefixes(Bytes::new(128 << 20)),
        ),
        (
            "golden_paged_eviction_point",
            &paged_trace,
            ServeOptions::memory_aware(Bytes::new(8 << 20), 320).paged(16),
        ),
        (
            "plain_sweep_point",
            &plain_trace,
            ServeOptions {
                batch_cap: Some(8),
                ..ServeOptions::with_pruning()
            },
        ),
    ];
    let mut entries = Vec::new();
    for (name, trace, options) in sections {
        let (wall_s, simulated) = time_section(system, trace, options, repeats);
        let requests_per_s = simulated as f64 / wall_s;
        // Only the headline point has a checked-in seed baseline.
        let speedup = if name == "golden_multi_tenant_sharing_point" {
            format!(
                ",\n    \"speedup_vs_seed\": {:.2}",
                requests_per_s / SEED_REQUESTS_PER_S
            )
        } else {
            String::new()
        };
        println!("[bench] {name}: {requests_per_s:.1} requests/wall-second");
        entries.push(format!(
            "  {{\n    \"bench\": \"serving_sweep/{name}\",\n    \
             \"unit\": \"requests_simulated_per_wall_second\",\n    \
             \"requests_per_trace\": {},\n    \"repeats\": {repeats},\n    \
             \"wall_s\": {wall_s:.6},\n    \"requests_per_s\": {requests_per_s:.1}{speedup}\n  }}",
            trace.len(),
        ));
    }
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    let path = "BENCH_serving.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("[bench] wrote {path}"),
        Err(e) => eprintln!("[bench] failed to write {path}: {e}"),
    }
}

fn main() {
    let (sweep, scale) = sweep_scale();
    let system = EdgeMm::paper_default();
    latency_sweep(&system, &sweep, scale);
    slo_sweep(&system, &sweep);
    memory_sweep(&system, &sweep, scale == "smoke");
    paged_sweep(&system, &sweep, scale == "smoke");
    let bench = std::env::var("EDGEMM_BENCH_JSON").is_ok_and(|v| v != "0" && !v.is_empty());
    if bench {
        bench_json(&system);
    }
}
