//! Fig. 12 — activation-aware dynamic Top-k weight pruning evaluation.

use edgemm::figures::fig12_pruning;
use edgemm_mllm::zoo;

fn main() {
    let model = zoo::sphinx_tiny();
    let report = fig12_pruning(&model, model.llm.d_model, model.llm.d_ffn, 7);
    println!("== Fig. 12 dynamic Top-k pruning: {} ==", model.name);
    println!(
        "{:>5} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "layer", "kurtosis", "prune ratio", "cos(dyn)", "cos(0.1)", "cos(0.7)"
    );
    for layer in 0..report.layer_kurtosis.len() {
        println!(
            "{:>5} {:>10.2} {:>12.3} {:>10.4} {:>10.4} {:>10.4}",
            layer,
            report.layer_kurtosis[layer],
            report.layer_pruning_ratio[layer],
            report.cosine_dynamic[layer],
            report.cosine_fixed_mild[layer],
            report.cosine_fixed_aggressive[layer]
        );
    }
    println!(
        "decode latency reduction from pruning: {:.1}% (paper: 42%)",
        100.0 * report.decode_latency_reduction
    );
}
