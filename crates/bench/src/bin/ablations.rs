//! Ablation sweeps for the design choices called out in DESIGN.md:
//! systolic tile shape, CIM activation bit-width, dynamic-k threshold,
//! and the CC:MC cluster mix.

use edgemm::arch::{ChipConfig, CimGeometry, ClusterKind, SystolicGeometry};
use edgemm::pruning::{DynamicTopK, DynamicTopKConfig, Pruner};
use edgemm::sim::{DecodeOptions, Machine, SimConfig};
use edgemm_mllm::{zoo, ModelWorkload};
use edgemm_mllm::{ActivationGenerator, ActivationProfile};

fn main() {
    let workload = ModelWorkload::new(zoo::sphinx_tiny(), 20, 64);

    println!("== Ablation: systolic-array tile shape (prefill latency) ==");
    for (r, c) in [(8, 8), (16, 16), (32, 32), (16, 32)] {
        let chip = ChipConfig::builder()
            .systolic(SystolicGeometry {
                rows: r,
                cols: c,
                matrix_registers: 4,
            })
            .build()
            .expect("valid config");
        let machine = Machine::new(SimConfig {
            chip,
            ..SimConfig::paper_default()
        });
        let result = machine.run_phase_on(
            &workload,
            edgemm_mllm::Phase::Prefill,
            ClusterKind::ComputeCentric,
            DecodeOptions::baseline(),
        );
        println!("  {r:>2} x {c:<2}: {:>10.3} ms", result.seconds(1000) * 1e3);
    }

    println!("== Ablation: CIM activation bit-width (decode latency per 64 tokens) ==");
    for bits in [4u8, 8, 16] {
        let chip = ChipConfig::builder()
            .cim(CimGeometry {
                activation_bits: bits,
                ..CimGeometry::paper_default()
            })
            .build()
            .expect("valid config");
        let machine = Machine::new(SimConfig {
            chip,
            ..SimConfig::paper_default()
        });
        let result = machine.run_phase_on(
            &workload,
            edgemm_mllm::Phase::Decode,
            ClusterKind::MemoryCentric,
            DecodeOptions::baseline(),
        );
        println!("  W = {bits:>2}: {:>10.3} ms", result.seconds(1000) * 1e3);
    }

    println!("== Ablation: dynamic-k threshold t (average keep ratio) ==");
    let profile = ActivationProfile::sphinx_tiny_like(22, 2048);
    let generator = ActivationGenerator::new(profile, 7);
    for t in [4u32, 8, 16, 32, 64] {
        let mut pruner = DynamicTopK::new(DynamicTopKConfig {
            dim: 2048,
            threshold: t,
            min_keep: 64,
        });
        let mut keep = 0.0;
        for layer in 0..22 {
            let x = generator.generate(layer, 0);
            keep += pruner.select(layer, &x).keep_ratio();
        }
        println!("  t = {t:>2}: average keep ratio {:.3}", keep / 22.0);
    }

    println!("== Ablation: CC:MC cluster mix per group (request latency) ==");
    for (cc, mc) in [(3, 1), (2, 2), (1, 3)] {
        let chip = ChipConfig::builder()
            .cc_clusters_per_group(cc)
            .mc_clusters_per_group(mc)
            .build()
            .expect("valid config");
        let machine = Machine::new(SimConfig {
            chip,
            ..SimConfig::paper_default()
        });
        let report = machine.run_request(&workload, DecodeOptions::baseline());
        println!(
            "  {cc} CC : {mc} MC -> {:>10.3} ms",
            report.total_seconds() * 1e3
        );
    }
}
