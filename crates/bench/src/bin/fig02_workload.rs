//! Fig. 2 — workload analysis of SPHINX-Tiny and KarmaVLM.

use edgemm::figures::fig2_workload;
use edgemm_bench::format_seconds;
use edgemm_mllm::zoo;

fn main() {
    for model in [zoo::sphinx_tiny(), zoo::karmavlm()] {
        println!("== Fig. 2 workload analysis: {} ==", model.name);
        for row in fig2_workload(&model, &[16, 64, 256]) {
            println!("-- output tokens = {} --", row.output_tokens);
            let total: f64 = row.gpu_phase_seconds.iter().map(|(_, s)| s).sum();
            for ((phase, secs), (_, flops)) in row.gpu_phase_seconds.iter().zip(&row.phase_flops) {
                let (_, bytes) = row
                    .phase_weight_bytes
                    .iter()
                    .find(|(p, _)| p == phase)
                    .expect("phase present");
                println!(
                    "  {:<16} latency(3060) {:>12}  share {:>5.1}%  flops {:>8.2} G  weight traffic {}",
                    phase.to_string(),
                    format_seconds(*secs),
                    100.0 * secs / total,
                    *flops as f64 / 1e9,
                    edgemm_bench::format_bytes(*bytes),
                );
            }
        }
        println!();
    }
}
