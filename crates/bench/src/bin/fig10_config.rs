//! Fig. 10 — design configuration, area and power summary.

use edgemm::figures::fig10_config;

fn main() {
    let r = fig10_config();
    println!("== Fig. 10 EdgeMM design configuration (22 nm, 1 GHz) ==");
    println!("CC cores: {}   MC cores: {}", r.cc_cores, r.mc_cores);
    println!(
        "SA share of CC core area:  {:.1}%  (paper: 62%)",
        100.0 * r.sa_area_fraction
    );
    println!(
        "CIM share of MC core area: {:.1}%  (paper: 81%)",
        100.0 * r.cim_area_fraction
    );
    println!("Estimated chip area:  {:.2} mm^2", r.chip_area_mm2);
    println!(
        "Estimated chip power: {:.1} mW (paper: 112 mW)",
        r.chip_power_mw
    );
    println!(
        "Peak throughput:      {:.1} TFLOP/s BF16 (paper: 18 TFLOP/s)",
        r.peak_tflops
    );
}
