//! Table I — representative MLLMs and efficient edge MLLMs.

use edgemm::figures::table1_models;

fn main() {
    println!("== Table I representative MLLMs ==");
    println!(
        "{:<14} {:<28} {:<10} {:<20} {:>10}",
        "model", "visual encoder", "projector", "language model", "params"
    );
    for row in table1_models() {
        println!(
            "{:<14} {:<28} {:<10} {:<20} {:>9.2}B",
            row.name,
            row.encoder,
            row.projector,
            row.llm,
            row.total_params as f64 / 1e9
        );
    }
}
