//! Fig. 13 — token-length-driven bandwidth management gains.

use edgemm::figures::fig13_bandwidth;
use edgemm_bench::format_seconds;
use edgemm_mllm::zoo;

fn main() {
    let report = fig13_bandwidth(&zoo::sphinx_tiny(), &[8, 16, 36, 64, 128, 256, 512, 1024]);
    println!("== Fig. 13 bandwidth and workload management (SPHINX-Tiny) ==");
    println!(
        "expected token length l_e = {} (paper: 36), batching threshold l_b = {} (paper: 131)",
        report.expected_token_length, report.batching_threshold
    );
    println!(
        "{:>6} {:>8} {:>6} {:>14} {:>14} {:>10} {:>10}",
        "l", "Bc:Bm", "batch", "unmanaged", "managed", "lat. gain", "thpt gain"
    );
    for row in &report.rows {
        let ratio = row
            .ratio_bm_per_bc
            .map(|r| format!("1:{r:.0}"))
            .unwrap_or_else(|| "mc-only".to_string());
        println!(
            "{:>6} {:>8} {:>6} {:>14} {:>14} {:>9.1}% {:>9.2}x",
            row.output_tokens,
            ratio,
            row.batch,
            format_seconds(row.unmanaged_period_s),
            format_seconds(row.managed_period_s),
            100.0 * row.latency_reduction,
            row.throughput_gain
        );
    }
}
