//! Fig. 3 — activation channel sparsity across decoder layers.

use edgemm::figures::fig3_sparsity;
use edgemm_mllm::zoo;

fn main() {
    let model = zoo::sphinx_tiny();
    println!("== Fig. 3 FFN activation sparsity: {} ==", model.name);
    println!(
        "{:>5} {:>10} {:>10} {:>12} {:>10}",
        "layer", "max|v|", "mean|v|", "sparse frac", "kurtosis"
    );
    for row in fig3_sparsity(&model, 7) {
        println!(
            "{:>5} {:>10.3} {:>10.4} {:>12.3} {:>10.2}",
            row.layer, row.max_abs, row.mean_abs, row.negligible_fraction, row.kurtosis
        );
    }
}
