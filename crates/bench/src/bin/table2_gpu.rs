//! Table II — EdgeMM vs the RTX 3060 Laptop GPU.

use edgemm::figures::table2_gpu_comparison;
use edgemm_mllm::zoo;

fn main() {
    let report = table2_gpu_comparison(&zoo::sphinx_tiny(), 64);
    println!("== Table II EdgeMM vs mobile GPU (SPHINX-Tiny, 64 output tokens) ==");
    println!(
        "RTX 3060 Laptop:        {:>8.1} tokens/s  (1.00x)",
        report.gpu_tokens_per_second
    );
    println!(
        "EdgeMM:                 {:>8.1} tokens/s  ({:.2}x, paper: 2.15x)",
        report.edgemm_tokens_per_second, report.edgemm_speedup
    );
    println!(
        "EdgeMM + weight pruning:{:>8.1} tokens/s  ({:.2}x, paper: 2.84x)",
        report.edgemm_pruned_tokens_per_second, report.edgemm_pruned_speedup
    );
    println!(
        "EdgeMM + pruning efficiency: {:.3} tokens/J (paper: 0.217-0.28 token/J; see EXPERIMENTS.md)",
        report.edgemm_tokens_per_joule
    );
}
