//! Fig. 6b — effective DMA/DRAM bandwidth vs transfer block size.

use edgemm::figures::fig6_effective_bandwidth;
use edgemm_bench::format_bytes;

fn main() {
    println!("== Fig. 6b effective bandwidth vs transfer size ==");
    let sizes: Vec<u64> = (10..=23).map(|p| 1u64 << p).collect();
    for (block, bw) in fig6_effective_bandwidth(&sizes) {
        println!("{:>12}  {:>8.2} GiB/s", format_bytes(block), bw);
    }
}
