//! Fig. 11 — homogeneous vs heterogeneous speedups over the Snitch baseline.

use edgemm::figures::fig11_hetero;
use edgemm_mllm::zoo;

fn main() {
    let report = fig11_hetero(&zoo::sphinx_tiny(), 64);
    println!("== Fig. 11 speedup over the Snitch SIMD baseline (SPHINX-Tiny, 64 output tokens) ==");
    println!(
        "{:<16} {:>10} {:>10} {:>10}",
        "phase", "homo-CC", "homo-MC", "hetero"
    );
    for i in 0..report.hetero.len() {
        println!(
            "{:<16} {:>9.1}x {:>9.1}x {:>9.1}x",
            report.hetero[i].0.to_string(),
            report.homo_cc[i].1,
            report.homo_mc[i].1,
            report.hetero[i].1
        );
    }
    println!(
        "whole MLLM: hetero is {:.2}x faster than homo-CC (paper: 1.79x) and {:.2}x faster than homo-MC (paper: 2.65x)",
        report.hetero_vs_homo_cc, report.hetero_vs_homo_mc
    );
}
