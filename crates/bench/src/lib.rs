//! Benchmark harness and figure-report binaries for the EdgeMM reproduction.
//!
//! Every table and figure of the paper's evaluation has a report binary that
//! regenerates it from the library:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `fig02_workload` | Fig. 2 — workload analysis (latency breakdown, FLOPs, memory accesses) |
//! | `fig03_sparsity` | Fig. 3 — FFN activation sparsity across layers |
//! | `fig06_bandwidth` | Fig. 6b — effective DMA bandwidth vs transfer size |
//! | `fig10_config` | Fig. 10 — design configuration, area and power |
//! | `fig11_hetero` | Fig. 11 — homo-CC / homo-MC / heterogeneous speedups |
//! | `fig12_pruning` | Fig. 12 — dynamic Top-k pruning evaluation |
//! | `fig13_bandwidth` | Fig. 13 — bandwidth management latency/throughput gains |
//! | `table1_models` | Table I — representative MLLMs |
//! | `table2_gpu` | Table II — EdgeMM vs RTX 3060 Laptop |
//!
//! Run them all with `cargo run -p edgemm-bench --bin <name> --release`.
//! The Criterion benches (`coprocessors`, `end_to_end`) measure the cost of
//! the simulator itself and the scaling of the core kernels.

/// Format a byte count with a binary-prefix unit.
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

/// Format a duration in seconds with an adaptive unit.
pub fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.3} us", seconds * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_formatting() {
        assert_eq!(format_bytes(512), "512.00 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00 MiB");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(format_seconds(2.5), "2.500 s");
        assert_eq!(format_seconds(0.0021), "2.100 ms");
        assert_eq!(format_seconds(3.0e-6), "3.000 us");
    }
}
