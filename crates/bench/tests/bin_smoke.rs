//! Smoke tests: every figure/table report binary must run to completion and
//! print non-empty output. Guards against a bin rotting while the library
//! APIs it scripts drift (the bins are not exercised by unit tests).

use std::process::Command;

fn run(bin_path: &str, name: &str) {
    let output = Command::new(bin_path)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
    assert!(
        output.status.success(),
        "{name} exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.lines().filter(|l| !l.trim().is_empty()).count() >= 3,
        "{name} printed almost nothing:\n{stdout}",
    );
}

macro_rules! bin_smoke_tests {
    ($($name:ident),* $(,)?) => {$(
        #[test]
        fn $name() {
            run(env!(concat!("CARGO_BIN_EXE_", stringify!($name))), stringify!($name));
        }
    )*};
}

bin_smoke_tests!(
    fig02_workload,
    fig03_sparsity,
    fig06_bandwidth,
    fig10_config,
    fig11_hetero,
    fig12_pruning,
    fig13_bandwidth,
    table1_models,
    table2_gpu,
    ablations,
);

#[test]
fn serving_sweep() {
    // The serving sweep runs in smoke mode here: the full sweep is sized for
    // a release binary, not for the debug profile the test harness uses.
    let output = Command::new(env!("CARGO_BIN_EXE_serving_sweep"))
        .env("EDGEMM_SMOKE", "1")
        .output()
        .expect("spawn serving_sweep");
    assert!(
        output.status.success(),
        "serving_sweep exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("smoke"), "not in smoke mode:\n{stdout}");
    let (latency, rest) = stdout
        .split_once("== SLO sweep")
        .unwrap_or_else(|| panic!("missing SLO sweep section:\n{stdout}"));
    let (slo, rest) = rest
        .split_once("== Memory pressure")
        .unwrap_or_else(|| panic!("missing memory pressure section:\n{rest}"));
    let (memory, rest) = rest
        .split_once("== Paged vs reserved")
        .unwrap_or_else(|| panic!("missing paged-vs-reserved section:\n{rest}"));
    let (paged, fleet) = rest
        .split_once("== Fleet routing")
        .unwrap_or_else(|| panic!("missing fleet routing section:\n{rest}"));
    // Latency section: one line per (rate, cap, policy): 2 x 2 x 4 in smoke.
    let points = latency
        .lines()
        .filter(|l| POLICY_NAMES.iter().any(|name| l.contains(name)))
        .count();
    assert_eq!(points, 16, "unexpected latency sweep output:\n{latency}");
    // SLO section: one line per (rate, stack, class): 2 x 4 x 2 in smoke
    // (data rows lead with the numeric arrival rate).
    let slo_points = slo
        .lines()
        .filter(|l| {
            l.trim_start()
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit())
        })
        .count();
    assert_eq!(slo_points, 16, "unexpected SLO sweep output:\n{slo}");
    for marker in ["interactive", "edf/reject", "att%"] {
        assert!(slo.contains(marker), "SLO sweep lost {marker}:\n{slo}");
    }
    // Memory section: one line per (KV budget, chunk size): 2 x 2 in smoke.
    // Data rows lead with the budget ("16M" / "inf").
    let memory_points = memory
        .lines()
        .filter(|l| {
            let head = l.trim_start();
            head.chars().next().is_some_and(|c| c.is_ascii_digit()) || head.starts_with("inf")
        })
        .count();
    assert_eq!(
        memory_points, 4,
        "unexpected memory pressure output:\n{memory}"
    );
    for marker in ["peakKV", "whole", "preempt"] {
        assert!(
            memory.contains(marker),
            "memory sweep lost {marker}:\n{memory}"
        );
    }
    // Paged section: one line per (KV budget, allocation mode): 1 x 2 in
    // smoke. Data rows lead with the budget ("8M").
    let paged_points = paged
        .lines()
        .filter(|l| {
            l.trim_start()
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit())
        })
        .count();
    assert_eq!(
        paged_points, 2,
        "unexpected paged-vs-reserved output:\n{paged}"
    );
    for marker in ["reserved", "paged", "evict", "restart"] {
        assert!(
            paged.contains(marker),
            "paged sweep lost {marker}:\n{paged}"
        );
    }
    // Fleet section: one line per (replica count, routing policy): 2 x 4 in
    // smoke. Data rows lead with the replica count.
    let fleet_points = fleet
        .lines()
        .filter(|l| {
            l.trim_start()
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit())
        })
        .count();
    assert_eq!(fleet_points, 8, "unexpected fleet routing output:\n{fleet}");
    for marker in [
        "round-robin",
        "least-kv",
        "power-of-two",
        "prefix-affinity",
        "restart",
        "stale",
    ] {
        assert!(
            fleet.contains(marker),
            "fleet sweep lost {marker}:\n{fleet}"
        );
    }
}

const POLICY_NAMES: [&str; 4] = ["fcfs", "shortest-prompt", "pruning-aware", "edf"];

#[test]
fn table1_prints_the_papers_models() {
    let output = Command::new(env!("CARGO_BIN_EXE_table1_models"))
        .output()
        .expect("spawn table1_models");
    let stdout = String::from_utf8_lossy(&output.stdout);
    for model in [
        "LLaVA-7B",
        "MobileVLM",
        "TinyGPT-V",
        "SPHINX-Tiny",
        "DeepSeek-VL",
        "KarmaVLM",
    ] {
        assert!(
            stdout.contains(model),
            "Table I output is missing {model}:\n{stdout}"
        );
    }
}
