//! Dimensional newtypes for the quantities the cost model trades in.
//!
//! This file is the one place in the workspace where raw numeric casts on
//! unit-bearing values are allowed (the `unit-cast` rule of `edgemm-lint`
//! exempts `units.rs` by name). Everything outside goes through the named
//! constructors and accessors below.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Hz of a core clock given in MHz. The single blessed MHz→Hz conversion.
pub fn clock_hz(clock_mhz: u32) -> f64 {
    f64::from(clock_mhz) * 1.0e6
}

/// Generates the shared integer-quantity surface for a `u64`-backed newtype.
macro_rules! u64_quantity {
    ($name:ident, $unit:literal) => {
        impl $name {
            /// Zero of this quantity.
            pub const ZERO: Self = Self(0);
            /// Largest representable value (used for "unbounded" budgets).
            pub const MAX: Self = Self(u64::MAX);

            #[doc = concat!("Wraps a raw count of ", $unit, ".")]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Escape hatch: the raw count. Use at unit-system boundaries
            /// only (formatting, hashing, FFI-like interfaces).
            pub const fn get(self) -> u64 {
                self.0
            }

            /// Whether the quantity is zero.
            pub const fn is_zero(self) -> bool {
                self.0 == 0
            }

            /// Saturating addition.
            pub const fn saturating_add(self, rhs: Self) -> Self {
                Self(self.0.saturating_add(rhs.0))
            }

            /// Saturating subtraction (clamps at zero).
            pub const fn saturating_sub(self, rhs: Self) -> Self {
                Self(self.0.saturating_sub(rhs.0))
            }

            /// Checked addition; `None` on overflow. Pool accounting uses
            /// this so an adversarial reservation cannot wrap the ledger.
            pub const fn checked_add(self, rhs: Self) -> Option<Self> {
                match self.0.checked_add(rhs.0) {
                    Some(v) => Some(Self(v)),
                    None => None,
                }
            }

            /// Checked multiplication by a dimensionless count.
            pub const fn checked_mul(self, count: u64) -> Option<Self> {
                match self.0.checked_mul(count) {
                    Some(v) => Some(Self(v)),
                    None => None,
                }
            }

            /// The larger of two quantities.
            pub fn max(self, rhs: Self) -> Self {
                Self(self.0.max(rhs.0))
            }

            /// The smaller of two quantities.
            pub fn min(self, rhs: Self) -> Self {
                Self(self.0.min(rhs.0))
            }

            /// The quantity as a float, for ratio and seconds conversions.
            pub fn as_f64(self) -> f64 {
                self.0 as f64
            }

            /// Dimensionless ratio of two like quantities.
            pub fn ratio(self, denom: Self) -> f64 {
                self.0 as f64 / denom.0 as f64
            }

            /// Scales by a dimensionless factor, rounding half away from
            /// zero (`f64::round`), saturating on overflow.
            pub fn scale_round(self, factor: f64) -> Self {
                Self::from_f64_round(self.0 as f64 * factor)
            }

            /// Scales by a dimensionless factor, rounding up (`f64::ceil`),
            /// saturating on overflow.
            pub fn scale_ceil(self, factor: f64) -> Self {
                Self::from_f64_ceil(self.0 as f64 * factor)
            }

            /// Rounds a float count to the nearest whole unit (saturating).
            pub fn from_f64_round(value: f64) -> Self {
                Self(value.round() as u64)
            }

            /// Rounds a float count up to a whole unit (saturating).
            pub fn from_f64_ceil(value: f64) -> Self {
                Self(value.ceil() as u64)
            }

            /// Rounds a float count down to a whole unit (saturating).
            pub fn from_f64_floor(value: f64) -> Self {
                Self(value.floor() as u64)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<u64> for $name {
            type Output = Self;
            fn mul(self, count: u64) -> Self {
                Self(self.0 * count)
            }
        }

        impl Mul<usize> for $name {
            type Output = Self;
            fn mul(self, count: usize) -> Self {
                Self(self.0 * count as u64)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl PartialEq<u64> for $name {
            fn eq(&self, other: &u64) -> bool {
                self.0 == *other
            }
        }

        impl PartialOrd<u64> for $name {
            fn partial_cmp(&self, other: &u64) -> Option<std::cmp::Ordering> {
                self.0.partial_cmp(other)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt(f)
            }
        }
    };
}

/// A count of core clock cycles (durations and event timestamps).
///
/// Produced by the cost model (Eq. 2/3 compute formulas, the DRAM
/// effective-bandwidth model) and consumed by the serving event loop. The
/// only ways in and out of seconds are the explicit conversions below, all
/// of which take the clock they convert at.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Cycles(u64);

u64_quantity!(Cycles, "core clock cycles");

impl Cycles {
    /// Duration in seconds at a core clock given in MHz.
    pub fn seconds(self, clock_mhz: u32) -> f64 {
        self.0 as f64 / clock_hz(clock_mhz)
    }

    /// Duration in seconds at a clock given in Hz.
    pub fn seconds_at(self, hz: f64) -> f64 {
        self.0 as f64 / hz
    }

    /// Nearest cycle to a duration in seconds at a clock in Hz.
    pub fn from_seconds_round(seconds: f64, hz: f64) -> Self {
        Self((seconds * hz).round() as u64)
    }

    /// Last whole cycle at or before a duration in seconds at a clock in Hz.
    pub fn from_seconds_floor(seconds: f64, hz: f64) -> Self {
        Self((seconds * hz).floor() as u64)
    }
}

/// A count of bytes (DRAM traffic, KV-cache occupancy, memory budgets).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Bytes(u64);

u64_quantity!(Bytes, "bytes");

impl Bytes {
    /// Wraps a byte count held as `usize` (buffer and memory sizes).
    pub const fn from_usize(raw: usize) -> Self {
        Self(raw as u64)
    }

    /// A per-token byte rate, e.g. the KV bytes appended per decoded token.
    pub const fn per_token(bytes: u64) -> BytesPerToken {
        BytesPerToken(bytes)
    }

    /// Number of `chunk`-sized transfers needed to move this many bytes
    /// (the DMA transfer count: last transfer may be partial).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub const fn div_ceil(self, chunk: Bytes) -> u64 {
        self.0.div_ceil(chunk.0)
    }
}

/// A count of tokens (prompt length, generated length, KV block capacity).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Tokens(usize);

impl Tokens {
    /// Zero tokens.
    pub const ZERO: Self = Self(0);

    /// Wraps a raw token count.
    pub const fn new(raw: usize) -> Self {
        Self(raw)
    }

    /// Escape hatch: the raw count.
    pub const fn get(self) -> usize {
        self.0
    }

    /// Whether the count is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The count as a float (throughput numerators).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// The count widened to `u64` (cycle and block arithmetic).
    pub const fn as_u64(self) -> u64 {
        self.0 as u64
    }

    /// Number of `chunk`-sized blocks covering this many tokens (the paged
    /// KV block count: last block may be partial).
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub const fn div_ceil(self, chunk: usize) -> u64 {
        self.0.div_ceil(chunk) as u64
    }

    /// The larger of two counts.
    pub fn max(self, rhs: Self) -> Self {
        Self(self.0.max(rhs.0))
    }
}

impl Add for Tokens {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Tokens {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Tokens {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Sum for Tokens {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|q| q.0).sum())
    }
}

impl PartialEq<usize> for Tokens {
    fn eq(&self, other: &usize) -> bool {
        self.0 == *other
    }
}

impl PartialOrd<usize> for Tokens {
    fn partial_cmp(&self, other: &usize) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(other)
    }
}

impl fmt::Display for Tokens {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A byte rate per token: multiplying by [`Tokens`] yields [`Bytes`].
///
/// This is the type of "KV bytes per token" in the paged pool — keeping the
/// rate distinct from plain bytes is what catches the classic transposition
/// `block_tokens * budget` at compile time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct BytesPerToken(u64);

impl BytesPerToken {
    /// Wraps a raw bytes-per-token rate.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Escape hatch: the raw rate.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl Mul<Tokens> for BytesPerToken {
    type Output = Bytes;
    fn mul(self, tokens: Tokens) -> Bytes {
        Bytes(self.0 * tokens.0 as u64)
    }
}

impl Mul<usize> for BytesPerToken {
    type Output = Bytes;
    fn mul(self, tokens: usize) -> Bytes {
        Bytes(self.0 * tokens as u64)
    }
}

impl fmt::Display for BytesPerToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_preserves_raw_semantics() {
        let a = Cycles::new(100);
        let b = Cycles::new(250);
        assert_eq!((a + b).get(), 350);
        assert_eq!((b - a).get(), 150);
        assert_eq!(a.max(b), b);
        assert_eq!((a * 3u64).get(), 300);
        assert_eq!((a * 4usize).get(), 400);
        let sum: Cycles = [a, b].into_iter().sum();
        assert_eq!(sum.get(), 350);
    }

    #[test]
    fn checked_and_saturating_variants() {
        assert_eq!(Bytes::MAX.checked_add(Bytes::new(1)), None);
        assert_eq!(Bytes::new(1 << 40).checked_mul(1 << 40), None);
        assert_eq!(Bytes::MAX.saturating_add(Bytes::new(7)), Bytes::MAX);
        assert_eq!(Bytes::new(3).saturating_sub(Bytes::new(9)), Bytes::ZERO);
        assert_eq!(
            Bytes::new(3).checked_add(Bytes::new(9)),
            Some(Bytes::new(12))
        );
    }

    #[test]
    fn scaling_matches_raw_float_casts() {
        // The adoption refactor is behaviour-preserving only if these equal
        // the `(x as f64 * f).ceil() as u64` patterns they replaced.
        for raw in [0u64, 1, 1023, 4096, 1_000_003] {
            for factor in [0.0, 0.168, 0.5, 1.0, 1.25] {
                assert_eq!(
                    Bytes::new(raw).scale_ceil(factor).get(),
                    (raw as f64 * factor).ceil() as u64
                );
                assert_eq!(
                    Bytes::new(raw).scale_round(factor).get(),
                    (raw as f64 * factor).round() as u64
                );
            }
        }
    }

    #[test]
    fn seconds_conversions() {
        assert!((Cycles::new(4_000_000).seconds(1000) - 0.004).abs() < 1e-15);
        assert!((Cycles::new(500).seconds_at(1.0e3) - 0.5).abs() < 1e-15);
        assert_eq!(Cycles::from_seconds_round(0.5004, 1.0e3).get(), 500);
        assert_eq!(Cycles::from_seconds_floor(0.9999, 1.0e3).get(), 999);
        assert!((clock_hz(800) - 8.0e8).abs() < 1e-6);
    }

    #[test]
    fn byte_token_algebra() {
        let rate = Bytes::per_token(2048);
        assert_eq!(rate * Tokens::new(16), Bytes::new(32_768));
        assert_eq!(rate * 3usize, Bytes::new(6144));
        assert_eq!(Bytes::new(100).div_ceil(Bytes::new(64)), 2);
        assert_eq!(Tokens::new(33).div_ceil(16), 3);
        assert_eq!(Tokens::new(32).div_ceil(16), 2);
        assert_eq!(Tokens::ZERO.div_ceil(16), 0);
    }

    #[test]
    fn comparisons_against_raw_integers() {
        assert!(Bytes::new(50_091_008) == 50_091_008u64);
        assert!(Bytes::new(7) <= 8u64);
        assert!(Cycles::new(9) > 8u64);
        assert!(Tokens::new(7567) == 7567usize);
        assert!(Tokens::new(12) < 13usize);
    }

    #[test]
    fn display_prints_raw_count() {
        assert_eq!(format!("{}", Bytes::new(42)), "42");
        assert_eq!(format!("{}", Tokens::new(7)), "7");
        assert_eq!(format!("{}", Cycles::new(0)), "0");
        assert_eq!(format!("{}", Bytes::per_token(3)), "3");
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics_like_u64() {
        let _ = Cycles::new(1) - Cycles::new(2);
    }
}
