//! Unit-safe accounting primitives shared by every EdgeMM crate.
//!
//! Every quantity the simulator moves around — cycles from the cost model
//! (Table I/II of the paper), KV bytes in the paged pool, prompt/block token
//! counts in chunked prefill — used to be a bare `u64`/`usize`/`f64`, with
//! raw `as` casts converting between them. This crate makes the type system
//! the first static analyzer:
//!
//! * [`units`] defines `#[repr(transparent)]` newtypes ([`Cycles`],
//!   [`Bytes`], [`Tokens`], [`BytesPerToken`]) that only admit dimensionally
//!   meaningful arithmetic. Mixing a cycle count into a byte budget is a
//!   compile error; leaving the unit system requires an explicit
//!   [`Cycles::get`]-style escape hatch.
//! * [`float`] collects the *audited* floating-point comparisons — exact
//!   sentinel checks ([`float::is_zero`], [`float::is_one`]) and the golden
//!   tolerance helper ([`float::approx_eq`]) — so the `float-eq` rule of
//!   `edgemm-lint` can ban ad-hoc `==` on floats everywhere else.
//!
//! The newtypes are deliberately boring: no `Deref`, no blanket `From`
//! integers, no implicit widening. All conversions that cross a unit
//! boundary are named methods whose rounding behaviour is part of the
//! signature (`scale_ceil`, `from_seconds_round`, …), which is what lets the
//! golden suite prove the adoption refactor behaviour-preserving at 1e-6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod float;
pub mod units;

pub use float::approx_eq;
pub use units::{Bytes, BytesPerToken, Cycles, Tokens};
