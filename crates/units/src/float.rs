//! Audited floating-point comparisons.
//!
//! The `float-eq` rule of `edgemm-lint` bans `==`/`!=` against float
//! literals in non-test code, because most such comparisons are latent
//! tolerance bugs. The exceptions fall into two camps, both hosted here:
//!
//! * **Exact sentinel checks** ([`is_zero`], [`is_one`]): the cost model
//!   uses `1.0`/`0.0` as *exact* sentinels ("pool is neutral", "no traffic
//!   yet") that are assigned, never computed, so bitwise equality is the
//!   correct test — replacing it with a tolerance would silently widen the
//!   fast path and shift golden scalars.
//! * **Tolerance comparison** ([`approx_eq`]): the relative-error check the
//!   golden suite pins paper scalars with.
//!
//! Keeping every float comparison behind a named helper means each call
//! site states *which* semantics it wants, and the audit surface for "is
//! this equality sound?" is this one file.

/// Relative-tolerance equality: `|a - b| <= tol * max(|a|, |b|)`.
///
/// Exact equality (including `0 == 0` and equal infinities) always passes;
/// `NaN` never does. This mirrors the golden suite's `assert_close`.
pub fn approx_eq(a: f64, b: f64, rel_tol: f64) -> bool {
    if a == b {
        // lint:allow(float-eq): exact-match fast path of the tolerance check
        return true;
    }
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= rel_tol * scale
}

/// Exact test against the `0.0` sentinel.
///
/// Sound only for values that are *assigned* zero (never the result of
/// arithmetic that merely approaches zero). `-0.0` counts as zero.
pub fn is_zero(x: f64) -> bool {
    x == 0.0 // lint:allow(float-eq): audited exact sentinel comparison
}

/// Exact test against the `1.0` sentinel (neutral scale factor).
///
/// Sound only for factors that are *assigned* `1.0` on their neutral path,
/// as `KvPool::kv_traffic_factor` does; a tolerance here would misclassify
/// near-neutral pools and change exact integer fast paths.
pub fn is_one(x: f64) -> bool {
    x == 1.0 // lint:allow(float-eq): audited exact sentinel comparison
}

/// [`is_zero`] for `f32` values (activation sparsity fast paths and
/// max-magnitude guards in the pruning kernels, which run in `f32`).
pub fn is_zero_f32(x: f32) -> bool {
    x == 0.0 // lint:allow(float-eq): audited exact sentinel comparison
}

/// Total-order comparison for `f64` sort keys.
///
/// [`f64::total_cmp`] behind a named helper: unlike
/// `partial_cmp(..).expect("finite")` it cannot panic — `NaN` is ordered
/// (after `+inf` in IEEE 754 total order) instead of poisoning the sort.
/// The `float-partial-cmp` lint rule bans the raw `partial_cmp` form on
/// floats in unit crates in favour of this.
pub fn total_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

/// [`total_cmp`] for `f32` sort keys (pruning magnitude ranks).
pub fn total_cmp_f32(a: f32, b: f32) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

/// Dimensionless fraction of two counts: `num as f64 / den as f64`.
///
/// No zero guard — callers that need `0/0 == 0` semantics must check
/// emptiness first, exactly as the raw-cast code they replaced did.
pub fn fraction(num: usize, den: usize) -> f64 {
    num as f64 / den as f64
}

/// A dimensionless count (requests, steps, ranks) as an `f64`.
///
/// The escape hatch for counts that are *not* tracked quantities — code
/// dividing [`Bytes`](crate::units::Bytes) or
/// [`Cycles`](crate::units::Cycles) should use their `as_f64`/`ratio`
/// methods instead, so the unit survives to the division.
pub fn count(n: usize) -> f64 {
    n as f64
}

/// [`count`] for `u64` counters (event tallies, step counters).
pub fn count_u64(n: u64) -> f64 {
    n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_matches_golden_semantics() {
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(approx_eq(0.0, 0.0, 1e-9));
        assert!(approx_eq(100.0, 100.0 + 5e-5, 1e-6));
        assert!(!approx_eq(100.0, 100.2, 1e-6));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e-6));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 1e-6));
    }

    #[test]
    fn sentinels_are_exact() {
        assert!(is_zero(0.0));
        assert!(is_zero(-0.0));
        assert!(!is_zero(1e-300));
        assert!(is_one(1.0));
        assert!(!is_one(1.0 + f64::EPSILON));
        assert!(!is_one(f64::NAN));
    }

    #[test]
    fn total_cmp_orders_nan_instead_of_panicking() {
        use std::cmp::Ordering;
        assert_eq!(total_cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(total_cmp(2.0, 2.0), Ordering::Equal);
        assert_eq!(total_cmp(f64::NAN, f64::INFINITY), Ordering::Greater);
        assert_eq!(total_cmp_f32(-0.0, 0.0), Ordering::Less);
        let mut v = [3.0f64, f64::NAN, 1.0];
        v.sort_by(|a, b| total_cmp(*a, *b));
        assert_eq!(&v[..2], &[1.0, 3.0]);
    }

    #[test]
    fn fraction_is_plain_division() {
        assert!((fraction(3, 4) - 0.75).abs() < 1e-15);
        assert!(fraction(1, 0).is_infinite());
        assert!(fraction(0, 0).is_nan());
    }
}
