//! Fleet-level reporting: per-replica serve reports plus the cross-replica
//! aggregates a routing policy is judged on.

use edgemm_core::float::{count, fraction};
use edgemm_core::units::{Bytes, Tokens};
use edgemm_serve::ServeReport;

/// What a fleet serve returns: each replica's full [`ServeReport`] (exactly
/// what a one-shot serve of that replica's sub-trace would report), the
/// request-to-replica assignment, and the gateway's event accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Final per-replica reports, in replica order. A replica nothing was
    /// dispatched to carries an empty report.
    pub replicas: Vec<ServeReport>,
    /// `assignments[i]` is the replica the `i`-th submitted request was
    /// dispatched to.
    pub assignments: Vec<usize>,
    /// Completion events that were current when popped: the fleet clock
    /// observed that replica actually drained at that instant.
    pub completion_events: u64,
    /// Completion events invalidated by a later dispatch to the same
    /// replica before they popped (the queue has no cancellation; stale
    /// generations are counted and dropped).
    pub stale_completions: u64,
    /// Fleet-clock time of the last event processed: when the last replica
    /// drained the last request (0 for an empty trace).
    pub makespan_s: f64,
}

impl FleetReport {
    /// Requests dispatched across the fleet.
    pub fn dispatched(&self) -> usize {
        self.assignments.len()
    }

    /// Requests completed across all replicas.
    pub fn completed(&self) -> usize {
        self.replicas.iter().map(|r| r.completed.len()).sum()
    }

    /// Requests rejected by admission control across all replicas.
    pub fn rejected(&self) -> usize {
        self.replicas.iter().map(|r| r.rejected.len()).sum()
    }

    /// Requests submitted across all replicas (completed plus rejected);
    /// equals [`Self::dispatched`] by the gateway's conservation invariant
    /// (property-tested).
    pub fn submitted(&self) -> usize {
        self.replicas.iter().map(|r| r.submitted()).sum()
    }

    /// Fleet-wide SLO attainment: the fraction of all dispatched requests
    /// that completed within every deadline their class sets, rejected
    /// requests counting as misses — the submission-weighted aggregate of
    /// the per-replica attainments. 1.0 for an empty fleet run.
    pub fn slo_attainment(&self) -> f64 {
        let submitted = self.submitted();
        if submitted == 0 {
            return 1.0;
        }
        let met: usize = self
            .replicas
            .iter()
            .map(|r| r.completed.iter().filter(|c| c.meets_slo()).count())
            .sum();
        fraction(met, submitted)
    }

    /// Dispatched requests that missed their SLO (deadline-blowing
    /// completions plus rejections), summed across replicas.
    pub fn deadline_misses(&self) -> usize {
        self.replicas.iter().map(|r| r.deadline_misses()).sum()
    }

    /// Prompt tokens re-prefilled after mid-decode evictions, summed across
    /// replicas — the fleet-level cost of scattering tenants whose shared
    /// prefixes then thrash each replica's KV pool. The number
    /// prefix-affinity routing exists to shrink.
    pub fn restarted_prefill_tokens(&self) -> Tokens {
        self.replicas
            .iter()
            .map(|r| r.restarted_prefill_tokens)
            .sum()
    }

    /// Largest per-replica KV high-water mark.
    pub fn peak_kv_bytes(&self) -> Bytes {
        self.replicas
            .iter()
            .map(|r| r.peak_kv_bytes)
            .fold(Bytes::ZERO, Bytes::max)
    }

    /// Output tokens generated across the fleet.
    pub fn total_output_tokens(&self) -> Tokens {
        self.replicas.iter().map(|r| r.total_output_tokens).sum()
    }

    /// Per-replica load imbalance: the busiest replica's dispatched count
    /// over the fleet mean. 1.0 is a perfectly even split (and the value
    /// for an empty run); R is the worst case (everything on one of R
    /// replicas).
    pub fn load_imbalance(&self) -> f64 {
        let total = self.submitted();
        if total == 0 {
            return 1.0;
        }
        let max = self
            .replicas
            .iter()
            .map(|r| r.submitted())
            .max()
            .unwrap_or(0);
        fraction(max, total) * count(self.replicas.len())
    }
}
