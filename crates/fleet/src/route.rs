//! Routing policies: which replica's queue an arriving request joins.
//!
//! A [`RoutePolicy`] sees the arriving request plus one [`ReplicaView`] per
//! replica — the gateway's projection of each replica's load at the fleet
//! clock — and picks an index. Policies are stateful (round-robin keeps a
//! cursor, prefix-affinity a tenant map) but must be deterministic: the
//! gateway calls them exactly once per request, in fleet-clock order, and
//! the whole fleet run is replayed byte-identically from the same inputs.

use std::collections::HashMap;

use edgemm_core::units::Bytes;
use edgemm_serve::ServeRequest;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One replica's load as the gateway projects it at a routing instant.
///
/// The projection is *model time*, not host time: it is derived from the
/// replica's own simulated report over the requests dispatched to it so
/// far, evaluated at the fleet clock of the arrival being routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaView {
    /// Index of the replica this view describes.
    pub replica: usize,
    /// Requests dispatched to the replica so far (including finished ones).
    pub dispatched: usize,
    /// Dispatched requests the replica has not finished (completed or
    /// rejected) at the fleet clock.
    pub in_flight: usize,
    /// KV-cache bytes resident in the replica's pool at the fleet clock
    /// (the latest queue sample at or before it; zero before the first).
    pub kv_bytes: Bytes,
}

impl ReplicaView {
    /// The load key every built-in policy ranks replicas by: KV bytes
    /// first (the resource that actually runs out), then in-flight depth,
    /// then total dispatched, with the replica index as the deterministic
    /// tiebreak.
    fn load_key(&self) -> (Bytes, usize, usize, usize) {
        (self.kv_bytes, self.in_flight, self.dispatched, self.replica)
    }
}

/// Index of the least-loaded view (by [`ReplicaView::load_key`]).
fn least_loaded(views: &[ReplicaView]) -> usize {
    assert!(!views.is_empty(), "routing over an empty fleet");
    let mut best = 0;
    for i in 1..views.len() {
        if views[i].load_key() < views[best].load_key() {
            best = i;
        }
    }
    best
}

/// A pluggable fleet routing policy. Implementations must be deterministic
/// — any randomness must come from a fixed-seed generator owned by the
/// policy (see [`PowerOfTwoChoices`]).
pub trait RoutePolicy: std::fmt::Debug {
    /// Short human-readable name for reports and sweep tables.
    fn name(&self) -> &'static str;

    /// Index into `views` of the replica `request` is dispatched to.
    /// `views` is never empty and carries one entry per replica in replica
    /// order; the returned index must be in range.
    fn route(&mut self, request: &ServeRequest, views: &[ReplicaView]) -> usize;
}

/// Round-robin: dispatch to replicas in rotation, ignoring load. The
/// baseline every load-aware policy must beat — and the cheapest, since it
/// never reads a view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A fresh rotation starting at replica 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RoutePolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _request: &ServeRequest, views: &[ReplicaView]) -> usize {
        let target = self.next % views.len();
        self.next = (target + 1) % views.len();
        target
    }
}

/// Least-KV-loaded: dispatch to the replica with the fewest resident
/// KV-cache bytes at the fleet clock (ties broken by in-flight depth, then
/// dispatched count, then index). KV headroom is what admits decode streams
/// on a replica, so routing on it sends work where it can actually run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastKvLoaded;

impl RoutePolicy for LeastKvLoaded {
    fn name(&self) -> &'static str {
        "least-kv"
    }

    fn route(&mut self, _request: &ServeRequest, views: &[ReplicaView]) -> usize {
        least_loaded(views)
    }
}

/// Power-of-two-choices: sample two distinct replicas from a fixed-seed
/// generator and dispatch to the less loaded of the pair — the classic
/// "two random choices" result that gets most of least-loaded's balance at
/// a fraction of its state. Deterministic because the generator is a
/// caller-seeded [`StdRng`] (the sim-determinism lint keeps host entropy
/// out of this crate).
#[derive(Debug)]
pub struct PowerOfTwoChoices {
    rng: StdRng,
}

impl PowerOfTwoChoices {
    /// A sampler over the given seed; the same seed replays the same
    /// choice sequence.
    pub fn new(seed: u64) -> Self {
        PowerOfTwoChoices {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl RoutePolicy for PowerOfTwoChoices {
    fn name(&self) -> &'static str {
        "power-of-two"
    }

    fn route(&mut self, _request: &ServeRequest, views: &[ReplicaView]) -> usize {
        let n = views.len();
        if n == 1 {
            return 0;
        }
        let a = self.rng.gen_range(0usize..n);
        let mut b = self.rng.gen_range(0usize..n - 1);
        if b >= a {
            b += 1;
        }
        if views[b].load_key() < views[a].load_key() {
            b
        } else {
            a
        }
    }
}

/// Prefix-affinity: route every request of a tenant (identified by its
/// [`edgemm_serve::SharedPrefix`] id) to the replica that served the
/// tenant first, so the tenant's copy-on-write prefix blocks are allocated
/// once per fleet instead of once per replica the tenant happens to land
/// on. A tenant's first request — and any request without a declared
/// prefix — falls back to least-KV-loaded.
///
/// This is the PR 7 sharing win surviving sharding: scatter a tenant
/// across R replicas and each replica pays for (and evicts under pressure)
/// its own copy of the system prompt; pin the tenant and one copy serves
/// every stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefixAffinity {
    tenants: HashMap<u64, usize>,
}

impl PrefixAffinity {
    /// An affinity map with no pinned tenants yet.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RoutePolicy for PrefixAffinity {
    fn name(&self) -> &'static str {
        "prefix-affinity"
    }

    fn route(&mut self, request: &ServeRequest, views: &[ReplicaView]) -> usize {
        match request.shared_prefix {
            Some(prefix) => match self.tenants.get(&prefix.id) {
                Some(&replica) => replica,
                None => {
                    let replica = least_loaded(views);
                    self.tenants.insert(prefix.id, replica);
                    replica
                }
            },
            None => least_loaded(views),
        }
    }
}

/// The built-in routing policies, enumerable for sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastKvLoaded`].
    LeastKvLoaded,
    /// [`PowerOfTwoChoices`].
    PowerOfTwoChoices,
    /// [`PrefixAffinity`].
    PrefixAffinity,
}

impl RoutingKind {
    /// All built-in routing policies, in presentation order.
    pub const ALL: [RoutingKind; 4] = [
        RoutingKind::RoundRobin,
        RoutingKind::LeastKvLoaded,
        RoutingKind::PowerOfTwoChoices,
        RoutingKind::PrefixAffinity,
    ];

    /// A fresh policy instance. `seed` feeds the power-of-two-choices
    /// sampler; the deterministic policies ignore it.
    pub fn policy(self, seed: u64) -> Box<dyn RoutePolicy> {
        match self {
            RoutingKind::RoundRobin => Box::new(RoundRobin::new()),
            RoutingKind::LeastKvLoaded => Box::new(LeastKvLoaded),
            RoutingKind::PowerOfTwoChoices => Box::new(PowerOfTwoChoices::new(seed)),
            RoutingKind::PrefixAffinity => Box::new(PrefixAffinity::new()),
        }
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RoutingKind::RoundRobin => "round-robin",
            RoutingKind::LeastKvLoaded => "least-kv",
            RoutingKind::PowerOfTwoChoices => "power-of-two",
            RoutingKind::PrefixAffinity => "prefix-affinity",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgemm_serve::{ServeRequest, SharedPrefix, SloClass};

    fn view(replica: usize, in_flight: usize, kv: u64) -> ReplicaView {
        ReplicaView {
            replica,
            dispatched: in_flight,
            in_flight,
            kv_bytes: Bytes::new(kv),
        }
    }

    fn request(id: u64, prefix: Option<u64>) -> ServeRequest {
        ServeRequest {
            id,
            arrival_s: 0.0,
            text_tokens: 16,
            output_tokens: 8,
            slo: SloClass::best_effort(),
            shared_prefix: prefix.map(|id| SharedPrefix { id, tokens: 32 }),
        }
    }

    #[test]
    fn round_robin_rotates_regardless_of_load() {
        let mut policy = RoundRobin::new();
        let views = [view(0, 9, 900), view(1, 0, 0), view(2, 5, 500)];
        let picks: Vec<usize> = (0..6)
            .map(|i| policy.route(&request(i, None), &views))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_kv_prefers_bytes_then_depth_then_index() {
        let mut policy = LeastKvLoaded;
        let views = [view(0, 1, 500), view(1, 3, 100), view(2, 2, 100)];
        // Replica 1 and 2 tie on bytes; 2 has fewer in flight.
        assert_eq!(policy.route(&request(0, None), &views), 2);
        let tied = [view(0, 1, 100), view(1, 1, 100)];
        assert_eq!(policy.route(&request(1, None), &tied), 0);
    }

    #[test]
    fn power_of_two_is_seed_deterministic_and_in_range() {
        let views: Vec<ReplicaView> = (0..8).map(|i| view(i, i, 100 * i as u64)).collect();
        let run = |seed: u64| -> Vec<usize> {
            let mut policy = PowerOfTwoChoices::new(seed);
            (0..32)
                .map(|i| policy.route(&request(i, None), &views))
                .collect()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed must replay the same choices");
        assert!(a.iter().all(|&r| r < views.len()));
        assert_ne!(a, run(8), "different seeds should explore differently");
    }

    #[test]
    fn power_of_two_picks_the_less_loaded_of_its_pair() {
        // With two replicas every draw compares the same pair, so the
        // policy must always land on the unloaded one.
        let views = [view(0, 9, 900), view(1, 0, 0)];
        let mut policy = PowerOfTwoChoices::new(3);
        for i in 0..16 {
            assert_eq!(policy.route(&request(i, None), &views), 1);
        }
    }

    #[test]
    fn prefix_affinity_pins_a_tenant_to_its_first_replica() {
        let mut policy = PrefixAffinity::new();
        let views = [view(0, 4, 400), view(1, 0, 0), view(2, 2, 200)];
        // First sighting of tenant 42 goes least-loaded (replica 1) …
        assert_eq!(policy.route(&request(0, Some(42)), &views), 1);
        // … and stays there even once replica 1 is the most loaded.
        let loaded = [view(0, 0, 0), view(1, 9, 900), view(2, 2, 200)];
        assert_eq!(policy.route(&request(1, Some(42)), &loaded), 1);
        // A different tenant and a prefix-free request route by load.
        assert_eq!(policy.route(&request(2, Some(7)), &loaded), 0);
        assert_eq!(policy.route(&request(3, None), &loaded), 0);
    }

    #[test]
    fn kinds_enumerate_distinct_policies() {
        let names: Vec<&str> = RoutingKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["round-robin", "least-kv", "power-of-two", "prefix-affinity"]
        );
        for kind in RoutingKind::ALL {
            assert_eq!(kind.policy(0).name(), kind.name());
        }
    }
}
