//! # edgemm-fleet
//!
//! The fleet tier of the EdgeMM reproduction: N serving replicas — each a
//! full [`edgemm_serve::ServeSimulator`] over its own machine — behind one
//! gateway driven by a single [`edgemm_event::EventQueue`]. Request
//! arrivals, routing decisions and per-replica drain completions interleave
//! on one fleet clock, so the tier above a single chip reuses the exact
//! discrete-event core the chip-level engine runs on.
//!
//! The paper (PAPER.md) prices one chip serving one queue; production
//! traffic from millions of users needs many chips behind a router. This
//! crate composes that router entirely from costs the simulator already
//! models: every replica is priced by the PR 8 heap engine, and the gateway
//! only decides *which* replica's queue each request joins.
//!
//! ## Layout
//!
//! * [`route`] — the [`RoutePolicy`] trait and the four built-in policies
//!   (round-robin, least-KV-loaded, power-of-two-choices, prefix-affinity),
//!   enumerable through [`RoutingKind`].
//! * [`gateway`] — [`FleetGateway`]: the event-driven dispatch loop over
//!   [`FleetReplica`]s and the replica load projection it routes on.
//! * [`report`] — [`FleetReport`]: per-replica [`edgemm_serve::ServeReport`]s
//!   plus fleet-level SLO attainment, load imbalance and cross-replica
//!   restarted-prefill accounting.
//!
//! ## Determinism
//!
//! The gateway is bit-deterministic: routing happens in fleet-clock order
//! (ties broken by submission order through the event queue's FIFO
//! guarantee), the only randomized policy (power-of-two-choices) draws from
//! a caller-seeded [`rand::rngs::StdRng`], and nothing reads host time or
//! hashes with a random state. A fleet of one replica degenerates to the
//! single-machine engine byte for byte — pinned by the workspace
//! `fleet_of_one_is_byte_identical_to_serve` property.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gateway;
pub mod report;
pub mod route;

pub use gateway::{FleetGateway, FleetReplica, FLEET_CLOCK_HZ};
pub use report::FleetReport;
pub use route::{
    LeastKvLoaded, PowerOfTwoChoices, PrefixAffinity, ReplicaView, RoundRobin, RoutePolicy,
    RoutingKind,
};
