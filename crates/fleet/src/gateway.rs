//! The fleet gateway: one event-driven dispatch loop over N replicas.
//!
//! Every replica is a full [`ServeSimulator`] (the PR 8 heap engine) over
//! its own machine; the gateway owns a [`Clock`] + [`EventQueue`] pair from
//! `edgemm-event` — the same discrete-event core the chip-level engine runs
//! on — and interleaves three kinds of happenings on that single fleet
//! clock:
//!
//! 1. **Arrival**: a request reaches the gateway at its trace arrival time.
//! 2. **Dispatch**: the [`RoutePolicy`] picks a
//!    replica from the per-replica load projection at the arrival instant
//!    (dispatch is instantaneous: it happens at the arrival's cycle, after
//!    the arrival pops).
//! 3. **Completion**: a replica drains its queue. Each dispatch schedules a
//!    completion event at the replica's newly projected drain time; an
//!    event scheduled before a later dispatch carries a stale generation
//!    tag and is ignored when popped (the queue has no cancellation — this
//!    is the same lazy-invalidation idiom the chip engine uses for
//!    reschedulable work).
//!
//! ## Why re-simulation is the load model
//!
//! A replica's "current load" is not tracked incrementally: after every
//! dispatch the replica's whole assigned sub-trace is re-served through its
//! persistent simulator + scratch (the PR 9 session-reuse machinery makes
//! this cheap), and the resulting [`ServeReport`] *is* the projection the
//! next routing decision reads — in-flight depth and resident KV bytes are
//! evaluated from it at the fleet clock. This buys two properties worth the
//! O(n²/2R) re-serve cost: the projection is exactly what the replica will
//! report (no drift between a shadow model and the engine), and the final
//! per-replica report is byte-identical to a one-shot serve of the same
//! sub-trace — which is what pins a fleet of one to the single-machine
//! engine, byte for byte.

use edgemm_core::units::Cycles;
use edgemm_event::{Clock, EventQueue};
use edgemm_serve::{PolicyKind, ServeReport, ServeRequest, ServeScratch, ServeSimulator};

use crate::report::FleetReport;
use crate::route::{ReplicaView, RoutePolicy};

/// Resolution of the fleet clock: cycles per second. Replica engines run at
/// their own chip clocks; the gateway only needs a common timeline to order
/// arrivals and drains on, so it uses a fixed 1 GHz tick (nanoseconds).
pub const FLEET_CLOCK_HZ: f64 = 1.0e9;

/// What the gateway's event queue carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FleetEvent {
    /// Request `requests[i]` reaches the gateway.
    Arrival(usize),
    /// Replica `replica` drains everything dispatched to it by the
    /// dispatch numbered `generation` (the length of its sub-trace when
    /// the event was scheduled). Stale if the replica has been dispatched
    /// to since.
    Completion { replica: usize, generation: usize },
}

/// One serving replica handed to the gateway: a configured simulator plus
/// the scheduling policy its own CC/MC pipeline runs under. Replicas may be
/// heterogeneous — each simulator borrows its own machine, so a Fig.
/// 11-style mixed fleet is just a mixed vector.
#[derive(Debug)]
pub struct FleetReplica<'a> {
    simulator: ServeSimulator<'a>,
    policy: PolicyKind,
}

impl<'a> FleetReplica<'a> {
    /// A replica serving through `simulator` under `policy`.
    pub fn new(simulator: ServeSimulator<'a>, policy: PolicyKind) -> Self {
        FleetReplica { simulator, policy }
    }
}

/// A replica plus the gateway's per-replica dispatch state.
#[derive(Debug)]
struct ReplicaState<'a> {
    simulator: ServeSimulator<'a>,
    policy: PolicyKind,
    scratch: ServeScratch,
    /// Original trace indices dispatched here, kept sorted ascending so the
    /// sub-trace preserves the caller's submission order (what makes a
    /// fleet of one serve exactly the caller's slice).
    assigned: Vec<usize>,
    /// The sub-trace itself, index-aligned with `assigned`.
    subtrace: Vec<ServeRequest>,
    /// Projection of the current sub-trace through the replica engine.
    report: ServeReport,
}

impl ReplicaState<'_> {
    /// Insert original-trace request `idx` keeping submission order.
    fn assign(&mut self, idx: usize, request: ServeRequest) {
        let pos = self.assigned.partition_point(|&i| i < idx);
        self.assigned.insert(pos, idx);
        self.subtrace.insert(pos, request);
    }

    /// Re-serve the sub-trace through the persistent engine, refreshing the
    /// projection the next routing decision (and the final report) reads.
    fn project(&mut self) {
        self.report = self.simulator.run_with_scratch(
            &self.subtrace,
            self.policy.policy(),
            &mut self.scratch,
        );
    }

    /// Absolute model time at which the replica has finished (completed or
    /// rejected) everything dispatched so far; 0 for an idle replica.
    fn drain_s(&self) -> f64 {
        let finishes = self.report.completed.iter().map(|r| r.finish_s);
        let rejects = self.report.rejected.iter().map(|r| r.reject_s);
        finishes.chain(rejects).fold(0.0, f64::max)
    }

    /// The replica's load as seen at fleet time `now_s`.
    fn view(&self, replica: usize, now_s: f64) -> ReplicaView {
        let finished = self
            .report
            .completed
            .iter()
            .filter(|r| r.finish_s <= now_s)
            .count()
            + self
                .report
                .rejected
                .iter()
                .filter(|r| r.reject_s <= now_s)
                .count();
        let kv_bytes = self
            .report
            .queue_samples
            .iter()
            .take_while(|s| s.time_s <= now_s)
            .last()
            .map(|s| s.kv_bytes)
            .unwrap_or_default();
        ReplicaView {
            replica,
            dispatched: self.assigned.len(),
            in_flight: self.assigned.len() - finished,
            kv_bytes,
        }
    }
}

/// The routed multi-replica gateway. Build one from replicas, then
/// [`serve`](Self::serve) traces through it; replica pricing caches and
/// scratch persist across calls (the fleet-level analogue of a
/// `ServeSession`), while all dispatch state is per-call.
#[derive(Debug)]
pub struct FleetGateway<'a> {
    replicas: Vec<ReplicaState<'a>>,
}

impl<'a> FleetGateway<'a> {
    /// A gateway over the given replicas.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<FleetReplica<'a>>) -> Self {
        assert!(!replicas.is_empty(), "a fleet needs at least one replica");
        FleetGateway {
            replicas: replicas
                .into_iter()
                .map(|r| {
                    let mut scratch = ServeScratch::new();
                    let report = r
                        .simulator
                        .run_with_scratch(&[], r.policy.policy(), &mut scratch);
                    ReplicaState {
                        simulator: r.simulator,
                        policy: r.policy,
                        scratch,
                        assigned: Vec::new(),
                        subtrace: Vec::new(),
                        report,
                    }
                })
                .collect(),
        }
    }

    /// Number of replicas behind the gateway.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Serve `requests` across the fleet under `routing`.
    ///
    /// Arrivals are processed in fleet-clock order (same-instant arrivals
    /// in submission order, via the event queue's same-cycle FIFO
    /// guarantee); each is routed exactly once, against views projected at
    /// its arrival instant, and the dispatched replica is immediately
    /// re-projected so the next decision sees it. The returned
    /// [`FleetReport`] carries each replica's final report — byte-identical
    /// to a one-shot serve of that replica's sub-trace.
    ///
    /// # Panics
    ///
    /// Panics if `routing` returns an out-of-range replica index or a
    /// request arrives at a negative or non-finite time.
    pub fn serve(
        &mut self,
        requests: &[ServeRequest],
        routing: &mut dyn RoutePolicy,
    ) -> FleetReport {
        for replica in &mut self.replicas {
            replica.assigned.clear();
            replica.subtrace.clear();
            replica.project();
        }
        let mut clock = Clock::new();
        let mut events = EventQueue::new();
        for (i, request) in requests.iter().enumerate() {
            assert!(
                request.arrival_s >= 0.0 && request.arrival_s.is_finite(),
                "request {} arrives at invalid time {}",
                request.id,
                request.arrival_s
            );
            events.push(
                Cycles::from_seconds_round(request.arrival_s, FLEET_CLOCK_HZ),
                FleetEvent::Arrival(i),
            );
        }
        let mut assignments = vec![0usize; requests.len()];
        let mut routed = vec![false; requests.len()];
        let mut completion_events = 0u64;
        let mut stale_completions = 0u64;
        while let Some((cycle, event)) = events.pop() {
            clock.advance_to(cycle);
            match event {
                FleetEvent::Arrival(i) => {
                    let now_s = cycle.seconds_at(FLEET_CLOCK_HZ);
                    let views: Vec<ReplicaView> = self
                        .replicas
                        .iter()
                        .enumerate()
                        .map(|(k, r)| r.view(k, now_s))
                        .collect();
                    let target = routing.route(&requests[i], &views);
                    assert!(
                        target < self.replicas.len(),
                        "routing policy `{}` returned replica {} of {}",
                        routing.name(),
                        target,
                        self.replicas.len()
                    );
                    assert!(!routed[i], "request {} routed twice", requests[i].id);
                    routed[i] = true;
                    assignments[i] = target;
                    let replica = &mut self.replicas[target];
                    replica.assign(i, requests[i]);
                    replica.project();
                    let drain = Cycles::from_seconds_round(replica.drain_s(), FLEET_CLOCK_HZ);
                    events.push(
                        drain.max(cycle),
                        FleetEvent::Completion {
                            replica: target,
                            generation: replica.assigned.len(),
                        },
                    );
                }
                FleetEvent::Completion {
                    replica,
                    generation,
                } => {
                    if generation == self.replicas[replica].assigned.len() {
                        completion_events += 1;
                    } else {
                        stale_completions += 1;
                    }
                }
            }
        }
        debug_assert!(routed.iter().all(|&r| r), "every request was routed");
        FleetReport {
            replicas: self.replicas.iter().map(|r| r.report.clone()).collect(),
            assignments,
            completion_events,
            stale_completions,
            makespan_s: clock.now().seconds_at(FLEET_CLOCK_HZ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{LeastKvLoaded, PrefixAffinity, RoundRobin, RoutingKind};
    use edgemm_mllm::zoo;
    use edgemm_serve::{ServeConfig, TraceConfig};
    use edgemm_sim::{Machine, SimConfig};

    fn machine() -> Machine {
        Machine::new(SimConfig::paper_default())
    }

    fn replica(machine: &Machine) -> FleetReplica<'_> {
        FleetReplica::new(
            ServeSimulator::new(machine, zoo::sphinx_tiny(), ServeConfig::with_batch_cap(4)),
            PolicyKind::Fcfs,
        )
    }

    fn trace(requests: usize, seed: u64) -> Vec<ServeRequest> {
        TraceConfig::interactive(requests, 20.0, seed).generate()
    }

    #[test]
    fn a_fleet_of_one_serves_the_whole_trace_verbatim() {
        let m = machine();
        let trace = trace(6, 11);
        let mut gateway = FleetGateway::new(vec![replica(&m)]);
        let report = gateway.serve(&trace, &mut RoundRobin::new());
        let direct = ServeSimulator::new(&m, zoo::sphinx_tiny(), ServeConfig::with_batch_cap(4))
            .run(&trace, PolicyKind::Fcfs.policy());
        assert_eq!(report.replicas.len(), 1);
        assert_eq!(report.replicas[0], direct);
        assert!(report.assignments.iter().all(|&r| r == 0));
    }

    #[test]
    fn every_request_lands_on_exactly_one_replica() {
        let m = machine();
        let trace = trace(9, 3);
        let mut gateway = FleetGateway::new(vec![replica(&m), replica(&m), replica(&m)]);
        for kind in RoutingKind::ALL {
            let report = gateway.serve(&trace, kind.policy(5).as_mut());
            assert_eq!(report.dispatched(), trace.len(), "{}", kind.name());
            assert_eq!(report.submitted(), trace.len(), "{}", kind.name());
            assert_eq!(
                report.completed() + report.rejected(),
                trace.len(),
                "{}",
                kind.name()
            );
            assert_eq!(
                report.completion_events + report.stale_completions,
                u64::try_from(trace.len()).expect("fits"),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn round_robin_splits_a_saturated_trace_evenly() {
        let m = machine();
        let trace = TraceConfig::saturated(8, 24, 8).generate();
        let mut gateway = FleetGateway::new(vec![replica(&m), replica(&m)]);
        let report = gateway.serve(&trace, &mut RoundRobin::new());
        // All arrivals share cycle 0; the queue's FIFO tie order must hand
        // them to the rotation in submission order.
        assert_eq!(report.assignments, vec![0, 1, 0, 1, 0, 1, 0, 1]);
        let imbalance = report.load_imbalance();
        assert!((imbalance - 1.0).abs() < 1e-12, "even split: {imbalance}");
    }

    #[test]
    fn repeat_serves_through_one_gateway_are_identical() {
        let m = machine();
        let trace = trace(7, 23);
        let mut gateway = FleetGateway::new(vec![replica(&m), replica(&m)]);
        let first = gateway.serve(&trace, &mut LeastKvLoaded);
        let second = gateway.serve(&trace, &mut LeastKvLoaded);
        assert_eq!(first, second);
    }

    #[test]
    fn a_later_dispatch_stales_the_pending_completion() {
        let m = machine();
        // Two requests far apart in time on one replica: the first drain
        // completion pops current (the replica really is idle in between);
        // with both close together the first is staled by the second
        // dispatch before it pops.
        let near = TraceConfig::saturated(2, 16, 4).generate();
        let mut gateway = FleetGateway::new(vec![replica(&m)]);
        let report = gateway.serve(&near, &mut PrefixAffinity::new());
        assert_eq!(report.stale_completions, 1);
        assert_eq!(report.completion_events, 1);
    }

    #[test]
    fn heterogeneous_replicas_serve_under_their_own_configs() {
        let m = machine();
        let fast = FleetReplica::new(
            ServeSimulator::new(&m, zoo::sphinx_tiny(), ServeConfig::with_batch_cap(8)),
            PolicyKind::EarliestDeadlineFirst,
        );
        let slow = FleetReplica::new(
            ServeSimulator::new(&m, zoo::sphinx_tiny(), ServeConfig::with_batch_cap(1)),
            PolicyKind::Fcfs,
        );
        let trace = trace(8, 41);
        let mut gateway = FleetGateway::new(vec![fast, slow]);
        let report = gateway.serve(&trace, &mut RoundRobin::new());
        assert_eq!(report.submitted(), trace.len());
        assert!(report.makespan_s > 0.0);
    }

    #[test]
    fn makespan_covers_the_last_drain() {
        let m = machine();
        let trace = trace(5, 2);
        let mut gateway = FleetGateway::new(vec![replica(&m), replica(&m)]);
        let report = gateway.serve(&trace, &mut LeastKvLoaded);
        let last_finish = report
            .replicas
            .iter()
            .flat_map(|r| r.completed.iter().map(|c| c.finish_s))
            .fold(0.0, f64::max);
        assert!(report.makespan_s >= last_finish - 1e-9);
    }
}
