//! Memory pressure: chunked prefill preemption and KV-budget admission.
//!
//! The scenario: the in-car copilot from `slo_copilot` again, but now the
//! interesting moment is caught in close-up. A dashcam summarisation job
//! with a ~1050-token prompt owns the serial CC stage when the driver asks
//! a question. Unchunked, the driver waits out the whole encode + prefill
//! block and blows the 250 ms interactive TTFT deadline; with prefill
//! chunked at ~one interactive prompt's worth of tokens, EDF takes the CC
//! stage back at the next chunk boundary and the first token arrives in
//! time.
//!
//! The second half zooms out: the same trade at trace scale, with decode
//! batch membership governed by a KV-cache byte budget
//! ([`edgemm::ServeOptions::memory_aware`]) instead of a constant cap —
//! peak resident KV stays inside the budget while throughput degrades
//! gracefully as the budget shrinks.
//!
//! Run with `cargo run --example memory_pressure --release`.

use edgemm::serve::{merge, Priority, ServeReport, ServeRequest, SloClass, TraceConfig};
use edgemm::units::Bytes;
use edgemm::{EdgeMm, ServeOptions};
use edgemm_mllm::zoo;

const MIB: u64 = 1 << 20;

fn print_closeup(label: &str, report: &ServeReport) {
    let driver = report
        .completed
        .iter()
        .find(|c| c.id == 1)
        .expect("driver query served");
    println!(
        "  {label:<26} driver TTFT {:>4.0} ms ({}) | {} chunk preemption(s)",
        driver.time_to_first_token_s() * 1e3,
        if driver.meets_ttft() {
            "meets 250 ms"
        } else {
            "MISSES 250 ms"
        },
        report.preemptions,
    );
}

fn main() {
    let system = EdgeMm::paper_default();
    let model = zoo::sphinx_tiny();

    // --- Close-up: one long prefill, one urgent arrival -----------------
    // The dashcam job arrives first and starts its ~1050-token prefill;
    // 1 ms later the driver asks a question.
    let dashcam = ServeRequest::new(0, 0.0, 768, 32).with_slo(SloClass::batch());
    let driver = ServeRequest::new(1, 0.001, 8, 24).with_slo(SloClass::interactive());
    println!(
        "== Close-up: a {}-token dashcam prefill vs a driver query arriving 1 ms later ==",
        model.prompt_tokens(768)
    );
    let unchunked = system.serve(&model, &[dashcam, driver], ServeOptions::slo_aware());
    let chunked = system.serve(
        &model,
        &[dashcam, driver],
        ServeOptions {
            chunk_tokens: Some(320),
            ..ServeOptions::slo_aware()
        },
    );
    print_closeup("unchunked prefill:", &unchunked);
    print_closeup("chunked at 320 tokens:", &chunked);
    let delta = unchunked
        .completed
        .iter()
        .find(|c| c.id == 1)
        .map(|c| c.time_to_first_token_s())
        .unwrap_or(0.0)
        - chunked
            .completed
            .iter()
            .find(|c| c.id == 1)
            .map(|c| c.time_to_first_token_s())
            .unwrap_or(0.0);
    println!(
        "  -> preempting at the chunk boundary buys the driver {:.0} ms of TTFT\n",
        delta * 1e3
    );

    // --- Zoomed out: a whole rush hour under a KV byte budget -----------
    let mixed = merge(&[
        TraceConfig::interactive(24, 12.0, 11).generate(),
        TraceConfig {
            text_tokens: (512, 768),
            ..TraceConfig::background(6, 3.0, 12)
        }
        .generate(),
    ]);
    println!(
        "== Rush hour ({} requests), edf/defer, chunk 320, batch bounded by KV budget ==",
        mixed.len()
    );
    println!(
        "  {:>10} {:>6} {:>6} {:>9} {:>9} {:>9}",
        "kv budget", "att%", "miss", "tok/s", "peak KV", "max batch"
    );
    let mut roomy_misses = 0;
    for budget in [16 * MIB, 32 * MIB, 48 * MIB, 96 * MIB] {
        let report = system.serve(
            &model,
            &mixed,
            ServeOptions::memory_aware(Bytes::new(budget), 320),
        );
        let max_batch = report
            .queue_samples
            .iter()
            .map(|s| s.active)
            .max()
            .unwrap_or(0);
        println!(
            "  {:>9}M {:>6.1} {:>6} {:>9.1} {:>7.1}M {:>9}",
            budget / MIB,
            report.slo_attainment() * 100.0,
            report.deadline_misses(),
            report.tokens_per_second(),
            report.peak_kv_bytes.as_f64() / MIB as f64,
            max_batch,
        );
        assert!(
            report.peak_kv_bytes <= budget,
            "KV admission leaked past the budget"
        );
        roomy_misses = report
            .completed
            .iter()
            .filter(|c| c.slo.priority == Priority::Interactive && !c.meets_slo())
            .count();
    }
    println!(
        "\nPeak resident KV never exceeds the budget: the batch shrinks instead. \
         The driver-facing\nclass keeps its deadlines first because edf/defer spends \
         the freed CC slots on whoever is\nclosest to missing — check the per-class \
         split with `serving_sweep` for the full picture."
    );
    println!("at 96 MiB the interactive class misses {roomy_misses} of 24 deadlines.");
}
