//! Driving copilot: the streaming, real-time workload the paper's
//! bandwidth-management section targets (autonomous-driving comprehension
//! and planning over a continuous camera stream).
//!
//! Frames arrive continuously, so EdgeMM runs the encoder/prefill of the
//! next frame on the CC clusters while the MC clusters decode the previous
//! frame's answer. The output length varies with the task — a terse hazard
//! warning (short) versus a full trajectory explanation (long) — and the
//! token-length-driven bandwidth manager re-balances the pipeline for each.
//!
//! Run with `cargo run --example driving_copilot --release`.

use edgemm::sched::{BandwidthPolicy, TokenLengthManager};
use edgemm::{EdgeMm, RequestOptions};
use edgemm_mllm::{zoo, ModelWorkload};

fn main() {
    let system = EdgeMm::paper_default();
    // The copilot uses the lighter KarmaVLM (Qwen1.5-0.5B) for lower latency.
    let reference = ModelWorkload::new(zoo::karmavlm(), 16, 64);
    let pipeline = system.pipeline_for(&reference, RequestOptions::with_pruning());
    let manager = TokenLengthManager::new(pipeline, BandwidthPolicy::paper_default());

    println!("== Driving copilot on KarmaVLM: streaming pipeline management ==\n");
    println!(
        "expected token length l_e = {} tokens, batching threshold l_b = {} tokens\n",
        pipeline.expected_token_length(),
        pipeline.batching_threshold()
    );

    let scenarios = [
        ("hazard warning", 12usize),
        ("lane-change explanation", 48),
        ("full manoeuvre plan", 160),
        ("incident report", 768),
    ];

    println!(
        "{:<26} {:>8} {:>8} {:>7} {:>14} {:>12} {:>12}",
        "scenario", "tokens", "Bc:Bm", "batch", "frame period", "lat. gain", "thpt gain"
    );
    for (name, tokens) in scenarios {
        let plan = manager.plan(tokens);
        let ratio = plan
            .point
            .allocation
            .ratio_bm_per_bc()
            .map(|r| format!("1:{r:.0}"))
            .unwrap_or_else(|| "mc-only".to_string());
        println!(
            "{:<26} {:>8} {:>8} {:>7} {:>11.1} ms {:>11.1}% {:>11.2}x",
            name,
            tokens,
            ratio,
            plan.point.batch,
            plan.point.period_s() * 1e3,
            100.0 * plan.latency_reduction(),
            plan.throughput_gain()
        );
    }

    // Sustained-throughput view: how many answers per second the copilot can
    // deliver for a mid-length response, with and without management.
    let plan = manager.plan(64);
    println!(
        "\nsteady state at 64-token answers: {:.1} tokens/s managed vs {:.1} tokens/s unmanaged",
        plan.point.tokens_per_second(),
        plan.unmanaged.tokens_per_second()
    );
}
