//! Mid-decode eviction: one decode-slot revocation, caught in close-up.
//!
//! The scenario picks up where `memory_pressure` left off. A dashcam
//! summarisation job with a ~1050-token prompt has finished its prefill and
//! is decoding a long summary. The KV budget is tight — the dashcam context
//! alone rivals the whole pool — so under PR 4's whole-request peak
//! reservation the stream was admitted through the oversized-solo escape
//! hatch and now *owns* the decode engine: when the driver asks a question,
//! the driver's prefill finishes quickly (TTFT is fine) but the answer
//! cannot start streaming until the dashcam stream drains, and the 30 ms
//! interactive TPOT deadline dies waiting for a decode slot.
//!
//! With the pool paged ([`edgemm::ServeOptions::paged`]), the moment the
//! driver's request is prefilled it *revokes* the dashcam stream's slot:
//! the batch-priority stream's KV blocks are freed and it re-queues for
//! re-prefill over everything it had generated, while the driver's tokens
//! start streaming immediately. The dashcam job still completes — eviction
//! never drops a request — it just pays the recompute.
//!
//! Run with `cargo run --example eviction_closeup --release`.

use edgemm::serve::{Priority, ServeReport, ServeRequest, SloClass};
use edgemm::units::Bytes;
use edgemm::{EdgeMm, ServeOptions};
use edgemm_mllm::zoo;

const MIB: u64 = 1 << 20;

fn report_line(label: &str, report: &ServeReport) {
    let driver = report
        .completed
        .iter()
        .find(|c| c.id == 1)
        .expect("driver query served");
    let dashcam = report
        .completed
        .iter()
        .find(|c| c.id == 0)
        .expect("dashcam job served");
    println!(
        "  {label:<22} driver: slot wait {:>5.0} ms, TPOT {:>5.1} ms ({}) | dashcam done at {:>4.2} s | {} eviction(s), {} re-prefilled tokens",
        (driver.decode_start_s - driver.prefill_end_s) * 1e3,
        driver.time_per_output_token_s() * 1e3,
        if driver.meets_tpot() {
            "meets 30 ms"
        } else {
            "MISSES 30 ms"
        },
        dashcam.finish_s,
        report.evictions,
        report.restarted_prefill_tokens,
    );
}

fn main() {
    let system = EdgeMm::paper_default();
    let model = zoo::sphinx_tiny();

    // The dashcam job arrives first and owns the machine; the driver asks a
    // question 400 ms in, mid-decode.
    let dashcam = ServeRequest::new(0, 0.0, 768, 192).with_slo(SloClass::batch());
    let driver = ServeRequest::new(1, 0.4, 8, 24).with_slo(SloClass::interactive());
    let budget = 12 * MIB;
    println!(
        "== A {}-token dashcam context vs a driver query, {} MiB KV budget ==",
        model.prompt_tokens(768),
        budget / MIB
    );
    println!(
        "   (dashcam KV alone: {:.1} MiB resident by the end of its generation)\n",
        model.llm.kv_cache_bytes(model.prompt_tokens(768) + 192, 1) as f64 / MIB as f64
    );

    let reserved = system.serve(
        &model,
        &[dashcam, driver],
        ServeOptions::memory_aware(Bytes::new(budget), 320),
    );
    let paged = system.serve(
        &model,
        &[dashcam, driver],
        ServeOptions::memory_aware(Bytes::new(budget), 320).paged(16),
    );
    report_line("reserved (PR 4):", &reserved);
    report_line("paged + eviction:", &paged);

    let wait = |report: &ServeReport| {
        report
            .completed
            .iter()
            .find(|c| c.id == 1)
            .map(|c| c.decode_start_s - c.prefill_end_s)
            .unwrap_or(0.0)
    };
    println!(
        "\n  -> revoking the batch stream's decode slot saves the driver {:.0} ms of slot wait",
        (wait(&reserved) - wait(&paged)) * 1e3
    );
    assert!(reserved.evictions == 0 && paged.evictions > 0);
    assert_eq!(paged.completed.len(), 2, "eviction must not drop a request");

    // Both interactive deadlines only hold once slots are revocable.
    let driver_ok = |r: &ServeReport| {
        r.completed
            .iter()
            .filter(|c| c.slo.priority == Priority::Interactive)
            .all(|c| c.meets_slo())
    };
    println!(
        "  reserved meets the driver's SLO: {} | paged meets it: {}",
        driver_ok(&reserved),
        driver_ok(&paged)
    );
}
