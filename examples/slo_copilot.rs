//! SLO copilot: one edge box, two kinds of users, hard deadlines.
//!
//! The scenario: an in-car copilot answers the driver's VQA queries
//! ("what does that sign mean?") while, in the background, the same EdgeMM
//! box summarises the trip's dashcam footage. The driver's queries are
//! [`edgemm::serve::SloClass::interactive`] — 250 ms to the first token,
//! 30 ms per token after that, or the answer is useless; the summaries are
//! [`edgemm::serve::SloClass::batch`] — no deadlines, they soak up whatever
//! capacity is left.
//!
//! The walk-through compares scheduling stacks on the same mixed trace:
//! FCFS serves whoever arrived first and lets a burst of background
//! prefills starve the driver; earliest-deadline-first (EDF) spends the
//! serial CC stage on the requests that are about to miss; adding
//! deferral or rejection (admission control) stops hopeless requests from
//! dragging salvageable ones down with them.
//!
//! Run with `cargo run --example slo_copilot --release`.

use edgemm::serve::{merge, AdmissionControl, PolicyKind, Priority, ServeReport, TraceConfig};
use edgemm::{EdgeMm, ServeOptions};
use edgemm_mllm::zoo;

fn print_stack(label: &str, report: &ServeReport) {
    println!(
        "\n{label}: attainment {:>5.1}%  misses {:>2}  rejected {:>2}  ({:.0} tok/s)",
        report.slo_attainment() * 100.0,
        report.deadline_misses(),
        report.rejected.len(),
        report.tokens_per_second(),
    );
    for class in report.class_stats() {
        println!(
            "  {:<12} {:>3} done {:>2} rej | TTFT p50/p95/p99 {:>4.0}/{:>4.0}/{:>4.0} ms \
             | TPOT p95 {:>5.1} ms | SLO {:>5.1}%",
            class.priority.name(),
            class.completed,
            class.rejected,
            class.p50_ttft_s * 1e3,
            class.p95_ttft_s * 1e3,
            class.p99_ttft_s * 1e3,
            class.p95_tpot_s * 1e3,
            class.attainment * 100.0,
        );
    }
}

fn main() {
    let system = EdgeMm::paper_default();
    let model = zoo::sphinx_tiny();

    // Rush hour: the driver asks ~12 questions over a few seconds while six
    // dashcam-summary jobs (long prompts, long outputs) queue up behind.
    let driver = TraceConfig::interactive(12, 10.0, 41).generate();
    let dashcam = TraceConfig::background(6, 2.5, 42).generate();
    let mixed = merge(&[driver, dashcam]);
    println!(
        "== SLO copilot on SPHINX-Tiny: {} driver queries (250 ms TTFT / 30 ms TPOT) \
         + {} dashcam summaries (no deadline) ==",
        12, 6
    );

    let stacks: [(&str, PolicyKind, AdmissionControl); 4] = [
        (
            "fcfs (arrival order, admit all)",
            PolicyKind::Fcfs,
            AdmissionControl::Serve,
        ),
        (
            "edf (deadline order, admit all)",
            PolicyKind::EarliestDeadlineFirst,
            AdmissionControl::Serve,
        ),
        (
            "edf + defer hopeless",
            PolicyKind::EarliestDeadlineFirst,
            AdmissionControl::Defer,
        ),
        (
            "edf + reject hopeless",
            PolicyKind::EarliestDeadlineFirst,
            AdmissionControl::Reject,
        ),
    ];
    let mut reports = Vec::new();
    for (label, policy, admission) in stacks {
        let report = system.serve(
            &model,
            &mixed,
            ServeOptions {
                policy,
                admission,
                ..ServeOptions::with_pruning()
            },
        );
        print_stack(label, &report);
        reports.push(report);
    }

    // What EDF actually did: the driver's worst query under each stack.
    let worst_interactive = |report: &ServeReport| {
        report
            .completed
            .iter()
            .filter(|c| c.slo.priority == Priority::Interactive)
            .map(|c| c.time_to_first_token_s())
            .max_by(|a, b| edgemm::float::total_cmp(*a, *b))
            .unwrap_or(0.0)
    };
    println!(
        "\nworst driver TTFT: fcfs {:.0} ms -> edf {:.0} ms \
         (deadline 250 ms; the CC stage stopped serving dashcam prefills first)",
        worst_interactive(&reports[0]) * 1e3,
        worst_interactive(&reports[1]) * 1e3,
    );

    // The load-shedding trade-off, spelled out.
    let reject = &reports[3];
    if reject.rejected.is_empty() {
        println!("rejection mode dropped nothing at this load — every query was feasible.");
    } else {
        println!(
            "rejection mode dropped {} hopeless request(s) so the remaining {} all \
             answered inside their deadlines.",
            reject.rejected.len(),
            reject.completed.len(),
        );
    }
}
