//! Fleet gateway: a rack of EdgeMM boxes behind one routed front door.
//!
//! One edge box serves one neighbourhood of users; a deployment serves a
//! building. This example puts sixteen EdgeMM replicas behind the fleet
//! gateway and pushes a multi-tenant overload trace through every routing
//! policy, showing what the fleet operator watches: SLO attainment, load
//! imbalance, and — the multi-tenant tell — how many prefill tokens had to
//! be *recomputed* because evictions threw away KV that a smarter router
//! would have kept shared. It closes with a Fig. 11-style heterogeneous
//! fleet — mostly paper-default chips plus two memory-centric ones — and
//! the routing trap that mix springs on a load-only policy.
//!
//! Run with `cargo run --example fleet_gateway --release`.

use edgemm::serve::{merge, TraceConfig};
use edgemm::units::Bytes;
use edgemm::{EdgeMm, RoutingKind, ServeOptions};
use edgemm_mllm::zoo;

fn main() {
    let system = EdgeMm::paper_default();
    let model = zoo::sphinx_tiny();

    // Six tenants hammering 96 chat requests at ~48 req/s, plus a handful
    // of long background prompts — the same overload point the golden
    // harness pins. Every tenant's requests repeat its system prompt, so
    // where a request lands decides whether that prompt's KV is shared or
    // duplicated.
    let trace = merge(&[
        TraceConfig::multi_tenant(6, 96, 48.0, 23).generate(),
        TraceConfig {
            text_tokens: (512, 768),
            ..TraceConfig::background(8, 12.0, 123)
        }
        .generate(),
    ]);
    // Paged KV with prefix sharing but no spill area: when a replica runs
    // out of pool, the evicted stream re-prefills from scratch and the
    // recomputed tokens show up in the fleet report.
    let options = ServeOptions {
        prefix_sharing: true,
        ..ServeOptions::memory_aware(Bytes::new(8 << 20), 64).paged(16)
    };

    const REPLICAS: usize = 16;
    println!(
        "== Fleet gateway on SPHINX-Tiny ({REPLICAS} replicas, {} requests) ==\n",
        trace.len()
    );
    println!(
        "{:<16} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "routing", "SLO%", "restarted", "imbalance", "makespan", "stale-ev"
    );
    for kind in RoutingKind::ALL {
        let report = system.serve_fleet(&model, &trace, REPLICAS, kind, options);
        println!(
            "{:<16} {:>5.1}% {:>10} {:>10.2} {:>8.2} s {:>10}",
            kind.name(),
            report.slo_attainment() * 100.0,
            report.restarted_prefill_tokens(),
            report.load_imbalance(),
            report.makespan_s,
            report.stale_completions,
        );
    }

    // Where did prefix-affinity put everyone? Each tenant's stream sticks
    // to the replica that already holds its system prompt.
    let affinity = system.serve_fleet(
        &model,
        &trace,
        REPLICAS,
        RoutingKind::PrefixAffinity,
        options,
    );
    println!("\nper-replica occupancy under prefix-affinity ('*' = one request):");
    for (replica, report) in affinity.replicas.iter().enumerate() {
        let served = report.submitted();
        if served > 0 {
            println!("  replica {replica:>2} |{}", "*".repeat(served));
        }
    }

    // A Fig. 11-style mixed rack: fourteen paper-default chips plus two
    // homo-MC chips, which decode respectably but prefill an order of
    // magnitude slower. The gateway prices each replica on its own
    // machine — and that exposes a classic routing trap: a load-only
    // policy keeps picking the slow chips *because* their near-empty KV
    // pools make them look idle.
    let mc = EdgeMm::homo_mc();
    let mut rack: Vec<&EdgeMm> = vec![&system; REPLICAS - 2];
    rack.push(&mc);
    rack.push(&mc);
    println!("\nheterogeneous rack (14x paper-default + 2x homo-MC), least-kv routing:");
    let hetero = EdgeMm::serve_fleet_on(&rack, &model, &trace, RoutingKind::LeastKvLoaded, options);
    let homo = system.serve_fleet(
        &model,
        &trace,
        REPLICAS,
        RoutingKind::LeastKvLoaded,
        options,
    );
    println!(
        "  homogeneous: SLO {:>5.1}%  makespan {:.2} s",
        homo.slo_attainment() * 100.0,
        homo.makespan_s
    );
    println!(
        "  mixed rack:  SLO {:>5.1}%  makespan {:.2} s",
        hetero.slo_attainment() * 100.0,
        hetero.makespan_s
    );
    let specialists: usize = hetero.replicas[REPLICAS - 2..]
        .iter()
        .map(|r| r.submitted())
        .sum();
    println!(
        "  the two slow MC chips absorbed {specialists} of {} requests: a KV-load \
         projection alone cannot see that the emptiest replica is empty \
         because it is slow",
        trace.len()
    );
}
