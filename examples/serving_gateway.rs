//! Serving gateway: EdgeMM as the backend of a multi-user assistant.
//!
//! A deployed edge box does not see one request at a time — it sees a
//! stream: bursts of VQA queries from several users, each with its own
//! prompt and answer length. This example pushes a Poisson trace through
//! the serving simulator and shows what the operator of such a gateway
//! would look at: latency percentiles per scheduling policy, the effect of
//! the decode batch capacity, and the queue-depth timeline under a burst.
//!
//! Run with `cargo run --example serving_gateway --release`.

use edgemm::serve::{PolicyKind, TraceConfig};
use edgemm::{EdgeMm, ServeOptions};
use edgemm_mllm::zoo;

fn main() {
    let system = EdgeMm::paper_default();
    let model = zoo::sphinx_tiny();

    // A minute of moderately heavy traffic: 48 requests at ~8 req/s with
    // interactive prompt/answer lengths.
    let trace = TraceConfig::interactive(48, 8.0, 2024);

    println!("== Serving gateway on SPHINX-Tiny (48 requests, ~8 req/s, pruning on) ==\n");
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "policy", "p50", "p95", "p99", "tokens/s", "req/s"
    );
    for kind in PolicyKind::ALL {
        let report = system.serve_trace(
            &model,
            &trace,
            ServeOptions {
                policy: kind,
                ..ServeOptions::with_pruning()
            },
        );
        println!(
            "{:<16} {:>7.0}ms {:>7.0}ms {:>7.0}ms {:>10.1} {:>8.2}",
            kind.name(),
            report.p50_latency_s() * 1e3,
            report.p95_latency_s() * 1e3,
            report.p99_latency_s() * 1e3,
            report.tokens_per_second(),
            report.requests_per_second(),
        );
    }

    // How far does continuous batching carry the decode stage?
    println!("\nbatch capacity scaling (fcfs, saturated burst of 16 requests):");
    println!(
        "{:>5} {:>10} {:>10} {:>8}",
        "cap", "makespan", "tokens/s", "occ"
    );
    let burst = TraceConfig::saturated(16, 24, 48);
    for cap in [1, 2, 4, 8, 16] {
        let report = system.serve_trace(
            &model,
            &burst,
            ServeOptions {
                batch_cap: Some(cap),
                ..ServeOptions::with_pruning()
            },
        );
        println!(
            "{:>5} {:>8.0}ms {:>10.1} {:>8.2}",
            cap,
            report.makespan_s * 1e3,
            report.tokens_per_second(),
            report.mean_batch_occupancy(),
        );
    }

    // Queue-depth timeline of the burst at cap 8: watch the backlog drain
    // as prefills feed the decode batch.
    let report = system.serve_trace(
        &model,
        &burst,
        ServeOptions {
            batch_cap: Some(8),
            ..ServeOptions::with_pruning()
        },
    );
    println!("\nqueue depth over time (cap 8, '#' = waiting, '*' = decoding):");
    let stride = (report.queue_samples.len() / 24).max(1);
    for sample in report.queue_samples.iter().step_by(stride) {
        println!(
            "  {:>7.1} ms |{}{}",
            sample.time_s * 1e3,
            "#".repeat(sample.waiting),
            "*".repeat(sample.active),
        );
    }

    let slowest = report
        .completed
        .iter()
        .max_by(|a, b| edgemm::float::total_cmp(a.latency_s(), b.latency_s()))
        .expect("non-empty");
    println!(
        "\nslowest request: id {} waited {:.0} ms in queues out of {:.0} ms total",
        slowest.id,
        slowest.queue_wait_s() * 1e3,
        slowest.latency_s() * 1e3,
    );
}
