//! Design-space exploration: sweep the architecture parameters the paper
//! calls scalable (Sec. III-A) and see how the end-to-end MLLM performance
//! responds. This is the kind of study the in-house "mapping explorer" was
//! built for.
//!
//! Run with `cargo run --example design_space_explorer --release`.

use edgemm::arch::{ChipConfig, CimGeometry, SystolicGeometry};
use edgemm::sim::{DecodeOptions, Machine, SimConfig};
use edgemm_mllm::{zoo, ModelWorkload};

fn run_point(chip: ChipConfig, workload: &ModelWorkload) -> f64 {
    let machine = Machine::new(SimConfig {
        chip,
        ..SimConfig::paper_default()
    });
    machine
        .run_request(workload, DecodeOptions::baseline())
        .total_seconds()
}

fn main() {
    let workload = ModelWorkload::new(zoo::sphinx_tiny(), 20, 64);
    let baseline = run_point(ChipConfig::paper_default(), &workload);
    println!("== EdgeMM design-space exploration (SPHINX-Tiny, 64 output tokens) ==");
    println!(
        "paper-default design point: {:.2} ms per request\n",
        baseline * 1e3
    );

    println!("-- group count (chip scaling) --");
    for groups in [1usize, 2, 4, 8] {
        let chip = ChipConfig::builder()
            .groups(groups)
            .build()
            .expect("valid config");
        let latency = run_point(chip, &workload);
        println!(
            "  {groups} groups: {:>8.2} ms  ({:.2}x vs default)",
            latency * 1e3,
            baseline / latency
        );
    }

    println!("\n-- CC : MC cluster mix per group --");
    for (cc, mc) in [(4usize, 0usize), (3, 1), (2, 2), (1, 3), (0, 4)] {
        let chip = ChipConfig::builder()
            .cc_clusters_per_group(cc)
            .mc_clusters_per_group(mc)
            .build();
        match chip {
            Ok(chip) => {
                let latency = run_point(chip, &workload);
                println!(
                    "  {cc} CC : {mc} MC -> {:>8.2} ms  ({:.2}x vs default)",
                    latency * 1e3,
                    baseline / latency
                );
            }
            Err(err) => println!("  {cc} CC : {mc} MC -> rejected ({err})"),
        }
    }

    println!("\n-- systolic array shape --");
    for (rows, cols) in [(8usize, 8usize), (16, 16), (32, 16), (32, 32)] {
        let chip = ChipConfig::builder()
            .systolic(SystolicGeometry {
                rows,
                cols,
                matrix_registers: 4,
            })
            .build()
            .expect("valid config");
        let latency = run_point(chip, &workload);
        println!(
            "  {rows:>2} x {cols:<2}: {:>8.2} ms  ({:.2}x vs default)",
            latency * 1e3,
            baseline / latency
        );
    }

    println!("\n-- CIM activation bit-serial width --");
    for bits in [4u8, 8, 16] {
        let chip = ChipConfig::builder()
            .cim(CimGeometry {
                activation_bits: bits,
                ..CimGeometry::paper_default()
            })
            .build()
            .expect("valid config");
        let latency = run_point(chip, &workload);
        println!(
            "  W = {bits:>2}: {:>8.2} ms  ({:.2}x vs default)",
            latency * 1e3,
            baseline / latency
        );
    }

    println!("\n-- external memory bandwidth --");
    for bw in [17.0f64, 34.0, 68.0, 136.0] {
        let chip = ChipConfig::builder()
            .dram_bandwidth_gib_s(bw)
            .build()
            .expect("valid config");
        let mut config = SimConfig {
            chip,
            ..SimConfig::paper_default()
        };
        config.dram.peak_gib_s = bw;
        let machine = Machine::new(config);
        let latency = machine
            .run_request(&workload, DecodeOptions::baseline())
            .total_seconds();
        println!(
            "  {bw:>5.1} GiB/s: {:>8.2} ms  ({:.2}x vs default)",
            latency * 1e3,
            baseline / latency
        );
    }
}
