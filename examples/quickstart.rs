//! Quickstart: simulate one multimodal request on the paper-default EdgeMM
//! chip, with and without activation-aware weight pruning.
//!
//! Run with `cargo run --example quickstart --release`.

use edgemm::{EdgeMm, RequestOptions};
use edgemm_mllm::{zoo, ModelWorkload, Phase};

fn main() {
    // The paper's design point: 4 groups x (2 CC + 2 MC clusters) at 1 GHz.
    let system = EdgeMm::paper_default();

    // One request against SPHINX-Tiny: an image plus a 20-token text prompt,
    // generating 64 output tokens.
    let workload = ModelWorkload::new(zoo::sphinx_tiny(), 20, 64);

    println!(
        "model: {} ({:.2} B parameters)",
        workload.config().name,
        workload.config().total_params() as f64 / 1e9
    );
    println!(
        "prompt tokens: {}, output tokens: {}\n",
        workload.prompt_tokens(),
        workload.output_tokens()
    );

    for (label, options) in [
        ("baseline (no pruning)", RequestOptions::default()),
        ("activation-aware pruning", RequestOptions::with_pruning()),
    ] {
        let report = system.run(&workload, options);
        println!("== {label} ==");
        for phase in Phase::ALL {
            if let Some(result) = report.run.phase(phase) {
                println!(
                    "  {:<16} {:>10.3} ms   ({:>5.1}% memory-bound)",
                    phase.to_string(),
                    result.seconds(1000) * 1e3,
                    100.0 * result.memory_bound_fraction()
                );
            }
        }
        println!("  end-to-end latency: {:>8.3} ms", report.latency_s * 1e3);
        println!(
            "  throughput:         {:>8.1} tokens/s",
            report.tokens_per_second
        );
        println!(
            "  efficiency:         {:>8.2} tokens/J",
            report.tokens_per_joule
        );
        if let Some(pruning) = &report.pruning {
            println!(
                "  measured keep ratio: {:>7.1}% of FFN channels",
                100.0 * pruning.average_keep_ratio
            );
        }
        println!();
    }
}
