//! Visual question answering assistant: the short-answer workload the
//! paper's intro motivates (comprehension / VQA on device).
//!
//! A VQA assistant answers with a couple of sentences (tens of tokens), so
//! the vision encoder and LLM prefill contribute a large share of the
//! latency and the bandwidth manager keeps the default allocation. The
//! example compares EdgeMM against the RTX 3060 Laptop reference and against
//! the two homogeneous designs, and then shows what the dynamic Top-k
//! pruning does layer by layer.
//!
//! Run with `cargo run --example vqa_assistant --release`.

use edgemm::figures;
use edgemm::{EdgeMm, RequestOptions};
use edgemm_baseline::{GpuModel, RooflineDevice};
use edgemm_mllm::{zoo, ModelWorkload};

fn main() {
    // VQA answers are short: ~32 output tokens.
    let output_tokens = 32;
    let workload = ModelWorkload::new(zoo::sphinx_tiny(), 24, output_tokens);
    let system = EdgeMm::paper_default();
    let gpu = GpuModel::rtx3060_laptop();

    println!("== VQA assistant on SPHINX-Tiny ({output_tokens} output tokens) ==\n");

    let edgemm_plain = system.run(&workload, RequestOptions::default());
    let edgemm_pruned = system.run(&workload, RequestOptions::with_pruning());
    let gpu_latency = gpu.request_seconds(&workload);

    println!("{:<28} {:>12} {:>14}", "platform", "latency", "tokens/s");
    println!(
        "{:<28} {:>9.1} ms {:>12.1}",
        gpu.name(),
        gpu_latency * 1e3,
        gpu.tokens_per_second(&workload)
    );
    println!(
        "{:<28} {:>9.1} ms {:>12.1}",
        "EdgeMM",
        edgemm_plain.latency_s * 1e3,
        edgemm_plain.tokens_per_second
    );
    println!(
        "{:<28} {:>9.1} ms {:>12.1}",
        "EdgeMM + weight pruning",
        edgemm_pruned.latency_s * 1e3,
        edgemm_pruned.tokens_per_second
    );

    let fig11 = figures::fig11_hetero(&zoo::sphinx_tiny(), output_tokens);
    println!(
        "\nheterogeneity payoff: {:.2}x faster than homo-CC, {:.2}x faster than homo-MC",
        fig11.hetero_vs_homo_cc, fig11.hetero_vs_homo_mc
    );

    // Per-layer view of what the dynamic Top-k pruner decided for this model.
    let measurement = system.measure_pruning(&workload, 42, 2);
    println!("\nper-layer dynamic pruning ratio (first layer is never pruned):");
    for (layer, ratio) in measurement.layer_pruning_ratio.iter().enumerate() {
        let bar = "#".repeat((ratio * 40.0).round() as usize);
        println!("  layer {layer:>2} {:>5.1}% {bar}", ratio * 100.0);
    }
    println!(
        "\naverage keep ratio: {:.1}% of FFN weight rows fetched from DRAM",
        100.0 * measurement.average_keep_ratio
    );
}
